//! Transducer models for every harvester class in the survey's Table I.
//!
//! A harvester is a [`Transducer`]: a static, environment-dependent I–V
//! characteristic (a voltage-dependent current source). All of the survey's
//! power-conditioning trade-offs — whether MPPT pays for itself, what a
//! fixed operating point forfeits, which storage devices a source can
//! charge directly — are functions of this curve and how it moves with the
//! environment.
//!
//! Implemented source classes (Table I "Harvesters" row):
//!
//! | Model | Class | Physics |
//! |---|---|---|
//! | [`PvModule`] | Light | single-diode equation with shunt leakage |
//! | [`FlowTurbine::micro_wind`] | Wind | ½ρAv³·Cp with cut-in/rated/cut-out |
//! | [`Teg`] | Thermal | Seebeck `V = S·ΔT` behind internal resistance |
//! | [`VibrationHarvester::piezo_cantilever`] | Piezo | resonant Lorentzian response |
//! | [`VibrationHarvester::electromagnetic`] | Inductive | as piezo, low impedance |
//! | [`Rectenna`] | Radio | logistic rectifier efficiency vs input power |
//! | [`FlowTurbine::micro_hydro`] | Water flow | turbine law with water density |
//! | [`AcDcInput`] | General AC/DC | fixed rectified supply (> 5 V) |
//!
//! # Examples
//!
//! ```
//! use mseh_harvesters::{PvModule, FlowTurbine, Transducer};
//! use mseh_env::Environment;
//! use mseh_units::Seconds;
//!
//! let env = Environment::outdoor_temperate(42);
//! let noon = env.conditions(Seconds::from_hours(12.0));
//!
//! let pv = PvModule::outdoor_panel_half_watt();
//! let wind = FlowTurbine::micro_wind();
//! let total = pv.mpp(&noon).power() + wind.mpp(&noon).power();
//! assert!(total.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acdc;
mod batch;
mod cache;
mod kind;
mod pv;
mod rf;
mod teg;
mod thevenin;
mod transducer;
mod vibration;
mod wind;

pub use acdc::AcDcInput;
pub use batch::VocBatch;
pub use cache::{CacheStats, SolveCache};
pub use kind::HarvesterKind;
pub use mseh_units::BatchSolve;
pub use pv::{PvModule, PvVocSolver};
pub use rf::Rectenna;
pub use teg::Teg;
pub use thevenin::Thevenin;
pub use transducer::{OperatingPoint, Transducer};
pub use vibration::VibrationHarvester;
pub use wind::FlowTurbine;
