//! RF rectenna: antenna plus rectifier with power-dependent conversion
//! efficiency.

use crate::cache::SolveCache;
use crate::kind::HarvesterKind;
use crate::thevenin::Thevenin;
use crate::transducer::Transducer;
use mseh_env::EnvConditions;
use mseh_units::{Amps, Ohms, Volts, Watts};

/// An RF energy-harvesting rectenna.
///
/// The defining nonlinearity of RF harvesting is the rectifier's
/// efficiency collapse at low input power (diode threshold): conversion
/// efficiency rises from near zero below the sensitivity floor toward a
/// peak efficiency at strong input. The model uses a smooth logistic in
/// log-power between those limits, matching published rectenna curves.
///
/// # Examples
///
/// ```
/// use mseh_harvesters::{Rectenna, Transducer};
/// use mseh_env::EnvConditions;
/// use mseh_units::{Seconds, Watts};
///
/// let rf = Rectenna::rectenna_915mhz();
/// let mut env = EnvConditions::quiescent(Seconds::ZERO);
/// env.rf_incident = Watts::from_micro(100.0);
/// assert!(rf.mpp(&env).power().as_micro() > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rectenna {
    name: String,
    /// Peak rectification efficiency at strong input.
    peak_eta: f64,
    /// Incident power at which efficiency reaches half its peak.
    half_power: Watts,
    /// Logistic steepness in decades of input power.
    steepness: f64,
    /// Output-side internal resistance.
    r_int: Ohms,
    /// Operating-point solve cache (equality- and clone-transparent).
    cache: SolveCache,
}

impl Rectenna {
    /// Creates a rectenna model.
    ///
    /// # Panics
    ///
    /// Panics if `peak_eta` is outside `(0, 1]` or the other parameters are
    /// non-positive.
    pub fn new(
        name: impl Into<String>,
        peak_eta: f64,
        half_power: Watts,
        steepness: f64,
        r_int: Ohms,
    ) -> Self {
        assert!(
            peak_eta > 0.0 && peak_eta <= 1.0,
            "peak efficiency must be in (0, 1]"
        );
        assert!(
            half_power.value() > 0.0,
            "half-power point must be positive"
        );
        assert!(
            steepness > 0.0 && r_int.value() > 0.0,
            "parameters must be positive"
        );
        Self {
            name: name.into(),
            peak_eta,
            half_power,
            steepness,
            r_int,
            cache: SolveCache::new(),
        }
    }

    /// A 915 MHz rectenna of the class in the Cymbet/Maxim evaluation kits:
    /// 55 % peak efficiency, half-efficiency at 10 µW incident.
    pub fn rectenna_915mhz() -> Self {
        Self::new(
            "915 MHz rectenna",
            0.55,
            Watts::from_micro(10.0),
            1.2,
            Ohms::from_kilo(1.0),
        )
    }

    /// Rectification efficiency at incident power `p_in`.
    pub fn efficiency(&self, p_in: Watts) -> f64 {
        if p_in.value() <= 0.0 {
            return 0.0;
        }
        let decades = (p_in.value() / self.half_power.value()).log10();
        self.peak_eta / (1.0 + (-self.steepness * decades * core::f64::consts::LN_10).exp())
    }

    /// Harvested DC power available at incident power `p_in`.
    pub fn harvested(&self, p_in: Watts) -> Watts {
        p_in * self.efficiency(p_in)
    }

    fn source(&self, env: &EnvConditions) -> Thevenin {
        Thevenin::from_max_power(self.harvested(env.rf_incident), self.r_int)
    }
}

impl Transducer for Rectenna {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        HarvesterKind::RfRectenna
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        self.source(env).current_at(v)
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        self.source(env).voc
    }

    fn solve_cache(&self) -> Option<&SolveCache> {
        Some(&self.cache)
    }

    fn env_signature(&self, env: &EnvConditions) -> [u64; 4] {
        [env.rf_incident.value().to_bits(), 0, 0, 0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::Seconds;

    fn env(rf_uw: f64) -> EnvConditions {
        let mut e = EnvConditions::quiescent(Seconds::ZERO);
        e.rf_incident = Watts::from_micro(rf_uw);
        e
    }

    #[test]
    fn efficiency_sigmoid_shape() {
        let r = Rectenna::rectenna_915mhz();
        // Half the peak at the half-power point.
        let at_half = r.efficiency(Watts::from_micro(10.0));
        assert!((at_half - 0.275).abs() < 1e-9, "{at_half}");
        // Near peak at strong input.
        assert!(r.efficiency(Watts::from_milli(10.0)) > 0.5);
        // Collapsed at nanowatt input.
        assert!(r.efficiency(Watts::from_nano(10.0)) < 0.02);
        assert_eq!(r.efficiency(Watts::ZERO), 0.0);
    }

    #[test]
    fn efficiency_monotone_in_power() {
        let r = Rectenna::rectenna_915mhz();
        let mut prev = 0.0;
        for exp in -9..-1 {
            let eta = r.efficiency(Watts::new(10f64.powi(exp)));
            assert!(eta >= prev);
            prev = eta;
        }
    }

    #[test]
    fn harvested_power_reaches_load() {
        let r = Rectenna::rectenna_915mhz();
        let e = env(100.0);
        let expected = r.harvested(Watts::from_micro(100.0));
        let mpp = r.mpp(&e);
        assert!(
            (mpp.power() - expected).abs().value() < 1e-6 * expected.value(),
            "{} vs {expected}",
            mpp.power()
        );
    }

    #[test]
    fn no_field_no_output() {
        let r = Rectenna::rectenna_915mhz();
        assert_eq!(r.open_circuit_voltage(&env(0.0)), Volts::ZERO);
    }

    #[test]
    #[should_panic(expected = "peak efficiency")]
    fn rejects_super_unity_efficiency() {
        Rectenna::new("bad", 1.2, Watts::from_micro(1.0), 1.0, Ohms::new(1.0));
    }
}
