//! Photovoltaic cell: the single-diode model with shunt resistance.
//!
//! Photovoltaic cells are "the most commonly-used harvester type" in the
//! surveyed systems; their strongly irradiance-dependent maximum-power
//! point is what makes MPPT worthwhile in Systems A and C, and what the
//! fixed-point compromise of System B trades away (experiment E3).

use crate::batch::VocBatch;
use crate::cache::SolveCache;
use crate::kind::HarvesterKind;
use crate::transducer::Transducer;
use mseh_env::EnvConditions;
use mseh_units::{Amps, BatchSolve, Volts, WattsPerSqM};

/// Boltzmann constant over elementary charge, V/K.
const K_OVER_Q: f64 = 8.617_333_262e-5;

/// Newton iteration budget of the Voc solve (scalar and batched alike).
const NEWTON_ITERS: usize = 32;

/// Bisection iteration budget of the guard fallback.
const BISECT_ITERS: usize = 64;

/// Lanes per batched solve block: one `u64` mask word.
const LANE_BLOCK: usize = 64;

/// A photovoltaic module modelled with the single-diode equation
///
/// `I(V) = I_ph − I_0·(exp(V / (n·N_s·V_t)) − 1) − V / R_sh`
///
/// where the photocurrent `I_ph` scales linearly with effective irradiance
/// and the thermal voltage `V_t` follows the cell temperature.
///
/// # Examples
///
/// ```
/// use mseh_harvesters::{PvModule, Transducer};
/// use mseh_env::EnvConditions;
/// use mseh_units::{Seconds, WattsPerSqM};
///
/// let pv = PvModule::outdoor_panel_half_watt();
/// let mut env = EnvConditions::quiescent(Seconds::ZERO);
/// env.irradiance = WattsPerSqM::new(1000.0);
/// let mpp = pv.mpp(&env);
/// // A "0.5 W" panel delivers about half a watt at standard conditions.
/// assert!((mpp.power().value() - 0.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PvModule {
    name: String,
    /// Short-circuit current at standard test conditions (1000 W/m²).
    isc_stc: Amps,
    /// Open-circuit voltage at standard test conditions.
    voc_stc: Volts,
    /// Number of series cells.
    n_series: u32,
    /// Diode ideality factor.
    ideality: f64,
    /// Shunt resistance (Ω); dominates behaviour at indoor light levels.
    r_shunt: f64,
    /// Diode saturation current, a pure function of the datasheet
    /// parameters, precomputed at construction so the I–V hot path pays
    /// one `exp` instead of two.
    i0: f64,
    /// Operating-point solve cache (equality- and clone-transparent).
    cache: SolveCache,
}

impl PvModule {
    /// Creates a module from datasheet STC figures.
    ///
    /// # Panics
    ///
    /// Panics if any electrical parameter is non-positive.
    pub fn new(
        name: impl Into<String>,
        isc_stc: Amps,
        voc_stc: Volts,
        n_series: u32,
        ideality: f64,
        r_shunt: f64,
    ) -> Self {
        assert!(isc_stc.value() > 0.0, "Isc must be positive");
        assert!(voc_stc.value() > 0.0, "Voc must be positive");
        assert!(n_series > 0, "need at least one cell");
        assert!(
            ideality > 0.0 && r_shunt > 0.0,
            "diode parameters must be positive"
        );
        // Calibrate the saturation current so I(Voc_stc) = 0 at STC and
        // 25 °C.
        let vt_stc = ideality * n_series as f64 * K_OVER_Q * 298.15;
        let leak = voc_stc.value() / r_shunt;
        let i0 = (isc_stc.value() - leak) / ((voc_stc.value() / vt_stc).exp() - 1.0);
        Self {
            name: name.into(),
            isc_stc,
            voc_stc,
            n_series,
            ideality,
            r_shunt,
            i0,
            cache: SolveCache::new(),
        }
    }

    /// A small outdoor polycrystalline panel rated ≈0.5 W:
    /// Isc 115 mA, Voc 6.0 V, 10 series cells.
    pub fn outdoor_panel_half_watt() -> Self {
        Self::new(
            "0.5 W polycrystalline panel",
            Amps::from_milli(115.0),
            Volts::new(6.0),
            10,
            1.3,
            2_000.0,
        )
    }

    /// A larger 2 W panel for the Smart Power Unit scale.
    pub fn outdoor_panel_two_watt() -> Self {
        Self::new(
            "2 W polycrystalline panel",
            Amps::from_milli(400.0),
            Volts::new(7.0),
            12,
            1.3,
            1_000.0,
        )
    }

    /// An amorphous-silicon indoor cell optimised for lux-level light:
    /// Isc 12 mA at STC (µA-scale under office lighting), Voc 4.2 V,
    /// 7 series cells.
    pub fn amorphous_indoor() -> Self {
        Self::new(
            "amorphous indoor cell",
            Amps::from_milli(12.0),
            Volts::new(4.2),
            7,
            1.8,
            60_000.0,
        )
    }

    /// Photocurrent at the given effective irradiance.
    fn photocurrent(&self, g: WattsPerSqM) -> f64 {
        (self.isc_stc.value() * g.value() / 1000.0).max(0.0)
    }

    /// Junction thermal voltage stack `n·N_s·V_t` at the ambient
    /// temperature.
    fn vt_stack(&self, env: &EnvConditions) -> f64 {
        self.ideality * self.n_series as f64 * K_OVER_Q * env.ambient.to_kelvin()
    }

    /// The detached Voc root-solve kernel: every constant the solve needs
    /// and nothing else. Scalar [`open_circuit_voltage`] solves and the
    /// batched [`VocBatch`] lanes both run through this one kernel, which
    /// is what keeps them bit-identical by construction.
    ///
    /// [`open_circuit_voltage`]: Transducer::open_circuit_voltage
    pub fn voc_solver(&self) -> PvVocSolver {
        PvVocSolver {
            i0: self.i0,
            r_shunt: self.r_shunt,
            hi: self.voc_stc.value() * 1.5,
        }
    }

    fn solve_voc(&self, iph: f64, vt: f64) -> f64 {
        self.voc_solver().solve_one((iph, vt))
    }
}

/// The open-circuit-voltage root solve of a [`PvModule`], detached from
/// the module: the root of `f(V) = I_ph − I_0·(exp(V/vt) − 1) − V/R_sh`
/// by guarded Newton from the high side.
///
/// `f` is decreasing and concave, so from any point at or above the root
/// Newton descends monotonically onto it with quadratic convergence. The
/// ideal-diode closed form `vt·ln(1 + I_ph/I_0)` (shunt ignored) sits
/// just above the root (`f` there is exactly `−V/R_sh < 0`), making it a
/// deterministic near-root start. The start point is a pure function of
/// the inputs — never of solve history — so results are reproducible
/// bit-for-bit across runs.
///
/// The input of one solve is the pair `(iph, vt)`: photocurrent and
/// junction thermal-voltage stack, the only per-environment quantities
/// the root depends on. [`BatchSolve::solve_lanes`] runs the same Newton
/// arithmetic across 64-lane blocks under a convergence mask — a lane
/// that converges freezes at exactly the iterate the scalar solve would
/// have returned, a lane that trips a guard falls back to the same
/// bisection, and a lane that exhausts the iteration budget keeps its
/// last iterate (the scalar behaviour), so every lane is bit-identical
/// to [`BatchSolve::solve_one`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvVocSolver {
    i0: f64,
    r_shunt: f64,
    /// Search ceiling `1.5·Voc_stc`.
    hi: f64,
}

impl PvVocSolver {
    /// Bisection fallback over `[0, hi]`, the guard path when Newton
    /// leaves the bracket (degenerate parameters).
    fn bisect(&self, iph: f64, vt: f64) -> f64 {
        let (mut lo, mut hi) = (0.0, self.hi);
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            let f = iph - self.i0 * ((mid / vt).exp() - 1.0) - mid / self.r_shunt;
            if f > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Masked Newton over one block of at most 64 lanes. Bit `i` of
    /// `mask` selects lane `i`; unselected lanes' `out` slots are left
    /// untouched.
    fn solve_block(&self, xs: &[(f64, f64)], mask: u64, out: &mut [f64]) {
        debug_assert!(xs.len() <= LANE_BLOCK);
        if self.i0 <= 0.0 || !self.i0.is_finite() {
            for (i, &(iph, vt)) in xs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    out[i] = self.bisect(iph, vt);
                }
            }
            return;
        }
        let mut v = [0.0f64; LANE_BLOCK];
        let mut pending = mask;
        let mut needs_bisect = 0u64;
        for (i, &(iph, vt)) in xs.iter().enumerate() {
            if pending & (1 << i) != 0 {
                v[i] = (vt * (iph / self.i0).ln_1p()).min(self.hi);
            }
        }
        for _ in 0..NEWTON_ITERS {
            if pending == 0 {
                break;
            }
            let mut lanes = pending;
            while lanes != 0 {
                let i = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                let (iph, vt) = xs[i];
                let e = (v[i] / vt).exp();
                let f = iph - self.i0 * (e - 1.0) - v[i] / self.r_shunt;
                let fp = -self.i0 * e / vt - 1.0 / self.r_shunt;
                let next = v[i] - f / fp;
                if !next.is_finite() || next < 0.0 || next > self.hi {
                    needs_bisect |= 1 << i;
                    pending &= !(1 << i);
                    continue;
                }
                if (next - v[i]).abs() <= 1e-12 * v[i].abs().max(1e-3) {
                    v[i] = next;
                    pending &= !(1 << i);
                    continue;
                }
                v[i] = next;
            }
        }
        // Lanes still pending after the budget keep their last iterate —
        // exactly what the scalar loop returns when it falls through.
        for (i, &(iph, vt)) in xs.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit == 0 {
                continue;
            }
            out[i] = if needs_bisect & bit != 0 {
                self.bisect(iph, vt)
            } else {
                v[i]
            };
        }
    }
}

impl BatchSolve for PvVocSolver {
    type Input = (f64, f64);

    fn solve_one(&self, (iph, vt): (f64, f64)) -> f64 {
        if self.i0 <= 0.0 || !self.i0.is_finite() {
            return self.bisect(iph, vt);
        }
        let mut v = (vt * (iph / self.i0).ln_1p()).min(self.hi);
        for _ in 0..NEWTON_ITERS {
            let e = (v / vt).exp();
            let f = iph - self.i0 * (e - 1.0) - v / self.r_shunt;
            let fp = -self.i0 * e / vt - 1.0 / self.r_shunt;
            let next = v - f / fp;
            if !next.is_finite() || next < 0.0 || next > self.hi {
                return self.bisect(iph, vt);
            }
            if (next - v).abs() <= 1e-12 * v.abs().max(1e-3) {
                return next;
            }
            v = next;
        }
        v
    }

    fn solve_lanes(&self, xs: &[(f64, f64)], active: &[bool], out: &mut [f64]) {
        assert_eq!(xs.len(), active.len());
        assert_eq!(xs.len(), out.len());
        // Uniform broadcast: an unjittered fleet group hands every lane
        // the same snapshot, so one solve fans out to all of them.
        let mut uniform: Option<(u64, u64)> = None;
        let mut all_same = true;
        for (i, &(iph, vt)) in xs.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let bits = (iph.to_bits(), vt.to_bits());
            match uniform {
                None => uniform = Some(bits),
                Some(u) if u == bits => {}
                Some(_) => {
                    all_same = false;
                    break;
                }
            }
        }
        if all_same {
            if let Some((iph, vt)) = uniform {
                let v = self.solve_one((f64::from_bits(iph), f64::from_bits(vt)));
                for (i, slot) in out.iter_mut().enumerate() {
                    if active[i] {
                        *slot = v;
                    }
                }
            }
            return;
        }
        for ((xs, active), out) in xs
            .chunks(LANE_BLOCK)
            .zip(active.chunks(LANE_BLOCK))
            .zip(out.chunks_mut(LANE_BLOCK))
        {
            let mut mask = 0u64;
            for (i, &a) in active.iter().enumerate() {
                if a {
                    mask |= 1 << i;
                }
            }
            if mask != 0 {
                self.solve_block(xs, mask, out);
            }
        }
    }
}

impl VocBatch for PvModule {
    fn voc_lanes(&self, envs: &[EnvConditions], out: &mut [f64]) {
        assert_eq!(envs.len(), out.len());
        let solver = self.voc_solver();
        let mut xs = [(0.0f64, 0.0f64); LANE_BLOCK];
        let mut active = [false; LANE_BLOCK];
        for (envs, out) in envs.chunks(LANE_BLOCK).zip(out.chunks_mut(LANE_BLOCK)) {
            for (i, env) in envs.iter().enumerate() {
                let iph = self.photocurrent(env.effective_irradiance());
                if iph <= 0.0 {
                    // Dead lane: the scalar path returns exactly zero
                    // without consulting the solver.
                    out[i] = 0.0;
                    active[i] = false;
                } else {
                    xs[i] = (iph, self.vt_stack(env));
                    active[i] = true;
                }
            }
            solver.solve_lanes(&xs[..envs.len()], &active[..envs.len()], out);
        }
    }
}

impl Transducer for PvModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        HarvesterKind::Photovoltaic
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        if v.value() < 0.0 {
            return Amps::ZERO;
        }
        let iph = self.photocurrent(env.effective_irradiance());
        if iph <= 0.0 {
            return Amps::ZERO;
        }
        let vt = self.vt_stack(env);
        let diode = self.i0 * ((v.value() / vt).exp() - 1.0);
        let shunt = v.value() / self.r_shunt;
        Amps::new((iph - diode - shunt).max(0.0))
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        let iph = self.photocurrent(env.effective_irradiance());
        if iph <= 0.0 {
            return Volts::ZERO;
        }
        let v = self.cache.voc(Transducer::env_signature(self, env), || {
            self.solve_voc(iph, self.vt_stack(env))
        });
        Volts::new(v)
    }

    fn solve_cache(&self) -> Option<&SolveCache> {
        Some(&self.cache)
    }

    fn voc_batch(&self) -> Option<&dyn VocBatch> {
        Some(self)
    }

    fn env_signature(&self, env: &EnvConditions) -> [u64; 4] {
        // Every ambient field the I–V curve reads: irradiance and
        // illuminance (photocurrent), ambient temperature (thermal
        // voltage). Never `env.time`.
        [
            env.irradiance.value().to_bits(),
            env.illuminance.value().to_bits(),
            env.ambient.value().to_bits(),
            0,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::{Celsius, Lux, Seconds};

    fn stc() -> EnvConditions {
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.irradiance = WattsPerSqM::new(1000.0);
        env.ambient = Celsius::new(25.0);
        env.hot_surface = env.ambient;
        env
    }

    #[test]
    fn stc_endpoints_match_datasheet() {
        let pv = PvModule::outdoor_panel_half_watt();
        let env = stc();
        let isc = pv.short_circuit_current(&env);
        assert!((isc.as_milli() - 115.0).abs() < 1.0, "{isc}");
        let voc = pv.open_circuit_voltage(&env);
        assert!((voc.value() - 6.0).abs() < 0.05, "{voc}");
    }

    #[test]
    fn mpp_power_near_rating_with_sane_fill_factor() {
        let pv = PvModule::outdoor_panel_half_watt();
        let env = stc();
        let mpp = pv.mpp(&env);
        let p = mpp.power().value();
        assert!((0.40..0.62).contains(&p), "MPP power {p}");
        // Fill factor for silicon should be 0.6–0.85.
        let ff = p / (6.0 * 0.115);
        assert!((0.6..0.85).contains(&ff), "fill factor {ff}");
        // MPP voltage around 75–90 % of Voc.
        let vr = mpp.voltage.value() / 6.0;
        assert!((0.7..0.95).contains(&vr), "v_mpp/voc {vr}");
    }

    #[test]
    fn current_scales_linearly_with_irradiance() {
        let pv = PvModule::outdoor_panel_half_watt();
        let mut env = stc();
        env.irradiance = WattsPerSqM::new(500.0);
        let half = pv.short_circuit_current(&env);
        env.irradiance = WattsPerSqM::new(1000.0);
        let full = pv.short_circuit_current(&env);
        assert!((full.value() / half.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn voc_drops_with_irradiance_logarithmically() {
        let pv = PvModule::outdoor_panel_half_watt();
        let mut env = stc();
        let voc_full = pv.open_circuit_voltage(&env).value();
        env.irradiance = WattsPerSqM::new(10.0);
        let voc_low = pv.open_circuit_voltage(&env).value();
        assert!(voc_low < voc_full);
        assert!(voc_low > 0.3 * voc_full, "voc_low {voc_low}");
    }

    #[test]
    fn dark_cell_is_dead() {
        let pv = PvModule::outdoor_panel_half_watt();
        let env = EnvConditions::quiescent(Seconds::ZERO);
        assert_eq!(pv.short_circuit_current(&env), Amps::ZERO);
        assert_eq!(pv.open_circuit_voltage(&env), Volts::ZERO);
        assert_eq!(pv.mpp(&env).power().value(), 0.0);
    }

    #[test]
    fn indoor_cell_yields_microwatts_under_office_light() {
        let pv = PvModule::amorphous_indoor();
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.illuminance = Lux::new(500.0);
        let p = pv.mpp(&env).power();
        // Office light should yield on the order of 1–100 µW.
        assert!((1e-6..2e-4).contains(&p.value()), "indoor MPP power {p}");
    }

    #[test]
    fn current_monotonically_non_increasing_in_voltage() {
        let pv = PvModule::outdoor_panel_half_watt();
        let env = stc();
        let mut prev = f64::MAX;
        for i in 0..=120 {
            let v = Volts::new(i as f64 * 0.05);
            let i_v = pv.current_at(v, &env).value();
            assert!(i_v <= prev + 1e-15, "I rose at {v}");
            prev = i_v;
        }
    }

    #[test]
    fn hotter_cell_has_lower_voc() {
        let pv = PvModule::outdoor_panel_half_watt();
        let mut env = stc();
        env.ambient = Celsius::new(60.0);
        let hot = pv.open_circuit_voltage(&env);
        env.ambient = Celsius::new(0.0);
        let cold = pv.open_circuit_voltage(&env);
        // With I0 fixed, a hotter junction raises Vt but the exp argument
        // shrinks — net effect in this model is a higher Voc bound; what we
        // require is simply a finite, positive sensitivity and no blow-up.
        assert!(hot.value() > 0.0 && cold.value() > 0.0);
        assert!((hot.value() - cold.value()).abs() < 2.5);
    }

    #[test]
    #[should_panic(expected = "Isc must be positive")]
    fn rejects_bad_parameters() {
        PvModule::new("bad", Amps::ZERO, Volts::new(1.0), 1, 1.0, 1.0);
    }

    #[test]
    fn repeated_conditions_hit_the_cache_bit_identically() {
        let pv = PvModule::outdoor_panel_half_watt();
        let env = stc();
        let voc1 = pv.open_circuit_voltage(&env);
        let mpp1 = pv.mpp(&env);
        let voc2 = pv.open_circuit_voltage(&env);
        let mpp2 = pv.mpp(&env);
        assert_eq!(voc1.value().to_bits(), voc2.value().to_bits());
        assert_eq!(
            mpp1.voltage.value().to_bits(),
            mpp2.voltage.value().to_bits()
        );
        assert_eq!(
            mpp1.current.value().to_bits(),
            mpp2.current.value().to_bits()
        );
        let stats = pv.cache.stats();
        assert!(stats.hits >= 2, "{stats:?}");
        // `env.time` is not part of the key: advancing the clock under
        // identical ambients still hits (the slot is single-entry, so
        // this runs before any key change evicts it).
        let mut later = env;
        later.time = Seconds::from_hours(3.0);
        let hits_before = pv.cache.stats().hits;
        let voc4 = pv.open_circuit_voltage(&later);
        assert_eq!(voc1.value().to_bits(), voc4.value().to_bits());
        assert!(pv.cache.stats().hits > hits_before);
        // A changed condition misses and re-solves.
        let mut warmer = env;
        warmer.ambient = Celsius::new(26.0);
        let voc3 = pv.open_circuit_voltage(&warmer);
        assert_ne!(voc1.value().to_bits(), voc3.value().to_bits());
    }

    #[test]
    fn newton_voc_matches_the_root_to_high_precision() {
        // The solved Voc must be an actual root of the unclamped diode
        // equation, at every light level and temperature regime.
        for (g, t) in [
            (1000.0, 25.0),
            (500.0, 0.0),
            (100.0, 60.0),
            (10.0, 25.0),
            (1.0, -10.0),
        ] {
            let pv = PvModule::outdoor_panel_half_watt();
            let mut env = stc();
            env.irradiance = WattsPerSqM::new(g);
            env.ambient = Celsius::new(t);
            let voc = pv.open_circuit_voltage(&env).value();
            let vt = pv.vt_stack(&env);
            let iph = pv.photocurrent(env.effective_irradiance());
            let f = iph - pv.i0 * ((voc / vt).exp() - 1.0) - voc / pv.r_shunt;
            assert!(
                f.abs() < 1e-9 * iph.max(1e-6),
                "residual {f} at G={g}, T={t}"
            );
        }
    }
}
