//! Harvester classification: the energy-source types enumerated in
//! Table I of the survey.

use core::fmt;

/// The energy-source class a harvester transduces.
///
/// These are exactly the source types appearing in the survey's Table I
/// ("Harvesters" row): light, wind, thermal, vibration (piezo and
/// electromagnetic/inductive), radio, water flow, and System G's generic
/// AC/DC input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum HarvesterKind {
    /// Photovoltaic cell (outdoor sun or indoor light).
    Photovoltaic,
    /// Micro wind turbine.
    WindTurbine,
    /// Thermoelectric generator (Seebeck).
    Thermoelectric,
    /// Piezoelectric vibration harvester.
    Piezoelectric,
    /// Electromagnetic / inductive vibration harvester.
    Electromagnetic,
    /// RF rectenna.
    RfRectenna,
    /// Micro hydro generator (water flow).
    Hydro,
    /// Generic external AC/DC input (System G's "General AC/DC > 5 V").
    ExternalAcDc,
}

impl HarvesterKind {
    /// All kinds, in Table-I ordering.
    pub const ALL: [HarvesterKind; 8] = [
        HarvesterKind::Photovoltaic,
        HarvesterKind::WindTurbine,
        HarvesterKind::Thermoelectric,
        HarvesterKind::Piezoelectric,
        HarvesterKind::Electromagnetic,
        HarvesterKind::RfRectenna,
        HarvesterKind::Hydro,
        HarvesterKind::ExternalAcDc,
    ];

    /// The label the survey's Table I uses for this source class.
    pub fn table_label(self) -> &'static str {
        match self {
            HarvesterKind::Photovoltaic => "Light",
            HarvesterKind::WindTurbine => "Wind",
            HarvesterKind::Thermoelectric => "Thermal",
            HarvesterKind::Piezoelectric => "Piezo",
            HarvesterKind::Electromagnetic => "Inductive",
            HarvesterKind::RfRectenna => "Radio",
            HarvesterKind::Hydro => "Water Flow",
            HarvesterKind::ExternalAcDc => "General AC/DC",
        }
    }

    /// Whether this source class delivers AC that must be rectified before
    /// storage (the survey's input-conditioning discussion).
    pub fn is_ac(self) -> bool {
        matches!(
            self,
            HarvesterKind::WindTurbine
                | HarvesterKind::Piezoelectric
                | HarvesterKind::Electromagnetic
                | HarvesterKind::RfRectenna
                | HarvesterKind::Hydro
                | HarvesterKind::ExternalAcDc
        )
    }
}

impl fmt::Display for HarvesterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table_one() {
        assert_eq!(HarvesterKind::Photovoltaic.to_string(), "Light");
        assert_eq!(HarvesterKind::WindTurbine.to_string(), "Wind");
        assert_eq!(HarvesterKind::RfRectenna.to_string(), "Radio");
        assert_eq!(HarvesterKind::Hydro.to_string(), "Water Flow");
    }

    #[test]
    fn dc_sources_are_pv_and_teg_only() {
        let dc: Vec<_> = HarvesterKind::ALL.iter().filter(|k| !k.is_ac()).collect();
        assert_eq!(
            dc,
            [&HarvesterKind::Photovoltaic, &HarvesterKind::Thermoelectric]
        );
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut kinds = HarvesterKind::ALL.to_vec();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), 8);
    }
}
