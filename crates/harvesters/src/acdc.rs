//! Generic external AC/DC input — System G's "General AC/DC > 5 V" source.
//!
//! EH-Link (System G of the survey) accepts any external AC or DC supply
//! above 5 V as an energy input. The model is a fixed rectified source with
//! a presence flag: unlike the ambient channels it does not depend on the
//! environment, which is precisely its role — a deterministic auxiliary
//! input for commissioning and testing.

use crate::kind::HarvesterKind;
use crate::thevenin::Thevenin;
use crate::transducer::Transducer;
use mseh_env::EnvConditions;
use mseh_units::{Amps, Ohms, Volts};

/// A generic external AC/DC input.
///
/// # Examples
///
/// ```
/// use mseh_harvesters::{AcDcInput, Transducer};
/// use mseh_env::EnvConditions;
/// use mseh_units::Seconds;
///
/// let input = AcDcInput::bench_supply_12v();
/// let env = EnvConditions::quiescent(Seconds::ZERO);
/// assert!(input.open_circuit_voltage(&env).value() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcDcInput {
    name: String,
    source: Thevenin,
    present: bool,
}

impl AcDcInput {
    /// Creates an external input with the given rectified open-circuit
    /// voltage and source resistance.
    ///
    /// # Panics
    ///
    /// Panics if `voltage` is not above the 5 V floor EH-Link specifies, or
    /// if `r_int` is non-positive.
    pub fn new(name: impl Into<String>, voltage: Volts, r_int: Ohms) -> Self {
        assert!(
            voltage.value() > 5.0,
            "general AC/DC inputs must exceed 5 V (EH-Link input window)"
        );
        Self {
            name: name.into(),
            source: Thevenin::new(voltage, r_int),
            present: true,
        }
    }

    /// A 12 V bench supply behind 50 Ω.
    pub fn bench_supply_12v() -> Self {
        Self::new("12 V bench supply", Volts::new(12.0), Ohms::new(50.0))
    }

    /// Sets whether the external supply is currently connected.
    pub fn set_present(&mut self, present: bool) {
        self.present = present;
    }

    /// Whether the external supply is connected.
    pub fn is_present(&self) -> bool {
        self.present
    }
}

impl Transducer for AcDcInput {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        HarvesterKind::ExternalAcDc
    }

    fn current_at(&self, v: Volts, _env: &EnvConditions) -> Amps {
        if self.present {
            self.source.current_at(v)
        } else {
            Amps::ZERO
        }
    }

    fn open_circuit_voltage(&self, _env: &EnvConditions) -> Volts {
        if self.present {
            self.source.voc
        } else {
            Volts::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::Seconds;

    #[test]
    fn supplies_power_when_present() {
        let input = AcDcInput::bench_supply_12v();
        let env = EnvConditions::quiescent(Seconds::ZERO);
        let mpp = input.mpp(&env);
        assert!((mpp.voltage.value() - 6.0).abs() < 1e-6);
        assert!((mpp.power().value() - 12.0 * 12.0 / (4.0 * 50.0)).abs() < 1e-6);
    }

    #[test]
    fn disconnecting_kills_output() {
        let mut input = AcDcInput::bench_supply_12v();
        input.set_present(false);
        assert!(!input.is_present());
        let env = EnvConditions::quiescent(Seconds::ZERO);
        assert_eq!(input.open_circuit_voltage(&env), Volts::ZERO);
        assert_eq!(input.short_circuit_current(&env), Amps::ZERO);
    }

    #[test]
    #[should_panic(expected = "exceed 5 V")]
    fn rejects_below_five_volts() {
        AcDcInput::new("bad", Volts::new(3.3), Ohms::new(10.0));
    }
}
