//! Vibration harvesters: resonant piezoelectric and electromagnetic
//! (inductive) transducers.
//!
//! Both are second-order resonators: they deliver their rated power only
//! when the ambient excitation is close to the design frequency, the
//! behaviour that makes vibration harvesting strongly deployment-specific
//! (the survey's motivation for interface circuits in System B).

use crate::cache::SolveCache;
use crate::kind::HarvesterKind;
use crate::thevenin::Thevenin;
use crate::transducer::Transducer;
use mseh_env::EnvConditions;
use mseh_units::{Amps, GAccel, Hertz, Ohms, Volts, Watts};

/// A resonant vibration harvester (piezoelectric cantilever or
/// electromagnetic proof-mass generator).
///
/// Power at the rated acceleration and resonance equals `rated_power`;
/// off-resonance response follows a Lorentzian with quality factor `q`,
/// and power scales with the square of acceleration (linear transducer).
/// The rectified electrical side is a Thevenin source whose internal
/// impedance distinguishes piezo (high, tens of kΩ) from electromagnetic
/// (low, tens–hundreds of Ω) devices.
///
/// # Examples
///
/// ```
/// use mseh_harvesters::{VibrationHarvester, Transducer};
/// use mseh_env::EnvConditions;
/// use mseh_units::{Seconds, GAccel, Hertz};
///
/// let piezo = VibrationHarvester::piezo_cantilever();
/// let mut env = EnvConditions::quiescent(Seconds::ZERO);
/// env.vibration_amp = GAccel::new(0.5);
/// env.vibration_freq = Hertz::new(100.0); // at resonance
/// assert!(piezo.mpp(&env).power().as_micro() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VibrationHarvester {
    name: String,
    kind: HarvesterKind,
    /// Electrical power at `rated_accel` and resonance.
    rated_power: Watts,
    /// Acceleration at which `rated_power` is reached.
    rated_accel: GAccel,
    /// Mechanical resonance frequency.
    resonance: Hertz,
    /// Resonator quality factor (bandwidth = f/Q).
    q: f64,
    /// Rectified-side internal resistance.
    r_int: Ohms,
    /// Operating-point solve cache (equality- and clone-transparent).
    cache: SolveCache,
}

impl VibrationHarvester {
    /// Creates a resonant harvester.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    pub fn new(
        name: impl Into<String>,
        kind: HarvesterKind,
        rated_power: Watts,
        rated_accel: GAccel,
        resonance: Hertz,
        q: f64,
        r_int: Ohms,
    ) -> Self {
        assert!(rated_power.value() > 0.0, "rated power must be positive");
        assert!(
            rated_accel.value() > 0.0,
            "rated acceleration must be positive"
        );
        assert!(resonance.value() > 0.0, "resonance must be positive");
        assert!(
            q > 0.0 && r_int.value() > 0.0,
            "Q and resistance must be positive"
        );
        Self {
            name: name.into(),
            kind,
            rated_power,
            rated_accel,
            resonance,
            q,
            r_int,
            cache: SolveCache::new(),
        }
    }

    /// A PZT cantilever in the EH-Link class: 250 µW at 0.5 g / 100 Hz,
    /// Q = 25, 20 kΩ source impedance.
    pub fn piezo_cantilever() -> Self {
        Self::new(
            "PZT cantilever",
            HarvesterKind::Piezoelectric,
            Watts::from_micro(250.0),
            GAccel::new(0.5),
            Hertz::new(100.0),
            25.0,
            Ohms::from_kilo(20.0),
        )
    }

    /// An electromagnetic proof-mass generator: 1 mW at 0.5 g / 60 Hz,
    /// broader resonance (Q = 10), 150 Ω coil.
    pub fn electromagnetic() -> Self {
        Self::new(
            "electromagnetic generator",
            HarvesterKind::Electromagnetic,
            Watts::from_milli(1.0),
            GAccel::new(0.5),
            Hertz::new(60.0),
            10.0,
            Ohms::new(150.0),
        )
    }

    /// Lorentzian frequency response in `[0, 1]` (1 at resonance).
    pub fn frequency_response(&self, f: Hertz) -> f64 {
        if f.value() <= 0.0 {
            return 0.0;
        }
        let fr = self.resonance.value();
        let detune = (f.value() / fr - fr / f.value()) * self.q;
        1.0 / (1.0 + detune * detune)
    }

    /// Available electrical power under `env`.
    pub fn available_power(&self, env: &EnvConditions) -> Watts {
        let a = env.vibration_amp.value();
        if a <= 0.0 {
            return Watts::ZERO;
        }
        let accel_factor = (a / self.rated_accel.value()).powi(2);
        self.rated_power * accel_factor * self.frequency_response(env.vibration_freq)
    }

    fn source(&self, env: &EnvConditions) -> Thevenin {
        Thevenin::from_max_power(self.available_power(env), self.r_int)
    }
}

impl Transducer for VibrationHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        self.kind
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        self.source(env).current_at(v)
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        self.source(env).voc
    }

    fn solve_cache(&self) -> Option<&SolveCache> {
        Some(&self.cache)
    }

    fn env_signature(&self, env: &EnvConditions) -> [u64; 4] {
        [
            env.vibration_amp.value().to_bits(),
            env.vibration_freq.value().to_bits(),
            0,
            0,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::Seconds;

    fn env(amp: f64, freq: f64) -> EnvConditions {
        let mut e = EnvConditions::quiescent(Seconds::ZERO);
        e.vibration_amp = GAccel::new(amp);
        e.vibration_freq = Hertz::new(freq);
        e
    }

    #[test]
    fn rated_power_at_rated_conditions() {
        let h = VibrationHarvester::piezo_cantilever();
        let p = h.available_power(&env(0.5, 100.0));
        assert!((p.as_micro() - 250.0).abs() < 1e-9, "{p}");
        let mpp = h.mpp(&env(0.5, 100.0));
        assert!(
            (mpp.power().as_micro() - 250.0).abs() < 0.5,
            "{}",
            mpp.power()
        );
    }

    #[test]
    fn power_quadratic_in_acceleration() {
        let h = VibrationHarvester::piezo_cantilever();
        let p1 = h.available_power(&env(0.25, 100.0)).value();
        let p2 = h.available_power(&env(0.5, 100.0)).value();
        assert!((p2 / p1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn off_resonance_response_collapses() {
        let h = VibrationHarvester::piezo_cantilever();
        assert!((h.frequency_response(Hertz::new(100.0)) - 1.0).abs() < 1e-12);
        // 10 % detune with Q=25 → strong attenuation.
        let detuned = h.frequency_response(Hertz::new(110.0));
        assert!(detuned < 0.05, "{detuned}");
        assert_eq!(h.frequency_response(Hertz::ZERO), 0.0);
    }

    #[test]
    fn response_symmetric_in_log_frequency() {
        let h = VibrationHarvester::piezo_cantilever();
        let above = h.frequency_response(Hertz::new(120.0));
        let below = h.frequency_response(Hertz::new(100.0 * 100.0 / 120.0));
        assert!((above - below).abs() < 1e-12);
    }

    #[test]
    fn still_environment_yields_nothing() {
        let h = VibrationHarvester::electromagnetic();
        let e = env(0.0, 60.0);
        assert_eq!(h.available_power(&e), Watts::ZERO);
        assert_eq!(h.open_circuit_voltage(&e), Volts::ZERO);
    }

    #[test]
    fn electromagnetic_is_low_impedance() {
        let em = VibrationHarvester::electromagnetic();
        let pz = VibrationHarvester::piezo_cantilever();
        let e_em = env(0.5, 60.0);
        let e_pz = env(0.5, 100.0);
        // At equal (rated) power fraction, the EM device has the much lower
        // open-circuit voltage because Voc = 2√(P·R).
        let voc_ratio =
            pz.open_circuit_voltage(&e_pz).value() / em.open_circuit_voltage(&e_em).value();
        assert!(voc_ratio > 3.0, "{voc_ratio}");
        assert_eq!(em.kind(), HarvesterKind::Electromagnetic);
        assert_eq!(pz.kind(), HarvesterKind::Piezoelectric);
    }

    #[test]
    #[should_panic(expected = "rated power")]
    fn rejects_zero_power() {
        VibrationHarvester::new(
            "bad",
            HarvesterKind::Piezoelectric,
            Watts::ZERO,
            GAccel::new(1.0),
            Hertz::new(100.0),
            10.0,
            Ohms::new(1.0),
        );
    }
}
