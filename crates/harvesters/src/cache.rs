//! The operating-point solve cache: exact-key memos for the expensive
//! per-step harvest solves (open-circuit voltage, maximum power point).
//!
//! Harvest solves are pure functions of the ambient conditions a
//! transducer senses: identical inputs must produce identical outputs.
//! [`SolveCache`] exploits that by memoizing the last solve keyed on the
//! *exact IEEE-754 bit pattern* of the sensed fields — a hit returns the
//! stored `f64`s verbatim, so cached results are bit-identical to the
//! solve they replaced by construction. Near-identical inputs miss and
//! re-solve; there is no tolerance, no interpolation, no drift.
//!
//! The cache can be disabled (for the uncached reference path the perf
//! harness compares against) and invalidated (on hot-swap and on fault
//! fire/clear transitions, where the surrounding wrapper changes what
//! the same key would produce). Hit/miss/invalidation counters are
//! lock-free and surfaced through the simulation metrics registry.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Solves answered from the memo.
    pub hits: u64,
    /// Solves that ran because the key did not match (or the cache was
    /// empty or disabled).
    pub misses: u64,
    /// Explicit invalidations (hot-swap, fault fire/clear).
    pub invalidations: u64,
}

impl CacheStats {
    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }

    /// Hit rate in `[0, 1]`; zero when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memo slot: the exact-bit key and the stored solver output.
type MemoSlot<T> = Mutex<Option<([u64; 4], T)>>;

/// A single-slot memo cache for a transducer's operating-point solves.
///
/// Keys are `[u64; 4]` bit-pattern signatures of the sensed ambient
/// fields (see `Transducer::env_signature`); values are the raw solver
/// outputs. One slot suffices: the simulation presents each harvester a
/// time-ordered stream of conditions, and the win is the long runs of
/// identical conditions (night, indoor-constant, steady-TEG spans).
///
/// Interior mutability (`Mutex` slots, atomic counters) keeps the cache
/// usable through `&self` — solves happen inside `&dyn Transducer`
/// calls. The mutex is uncontended in practice (one platform steps on
/// one thread; ensembles clone platforms per worker) and `Clone` hands
/// the new owner a *fresh, empty* cache so clones never share state.
#[derive(Debug)]
pub struct SolveCache {
    voc: MemoSlot<f64>,
    mpp: MemoSlot<(f64, f64)>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    enabled: AtomicBool,
}

impl SolveCache {
    /// A fresh, empty, enabled cache.
    pub fn new() -> Self {
        Self {
            voc: Mutex::new(None),
            mpp: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Looks up or computes the open-circuit voltage for `key`.
    ///
    /// A hit returns the stored value verbatim (bit-identical); a miss
    /// runs `solve` and stores the result. With the cache disabled the
    /// solve always runs and nothing is stored or counted.
    pub fn voc(&self, key: [u64; 4], solve: impl FnOnce() -> f64) -> f64 {
        if !self.enabled.load(Ordering::Relaxed) {
            return solve();
        }
        let mut slot = self.voc.lock().expect("solve cache poisoned");
        if let Some((k, v)) = *slot {
            if k == key {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = solve();
        *slot = Some((key, v));
        v
    }

    /// Looks up or computes the maximum power point `(voltage, current)`
    /// for `key`. Same contract as [`voc`](Self::voc).
    pub fn mpp(&self, key: [u64; 4], solve: impl FnOnce() -> (f64, f64)) -> (f64, f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return solve();
        }
        let mut slot = self.mpp.lock().expect("solve cache poisoned");
        if let Some((k, v)) = *slot {
            if k == key {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = solve();
        *slot = Some((key, v));
        v
    }

    /// Drops both memo slots (hot-swap, fault fire/clear). Counters are
    /// kept — an invalidation is an event worth observing, not a reset.
    pub fn invalidate(&self) {
        *self.voc.lock().expect("solve cache poisoned") = None;
        *self.mpp.lock().expect("solve cache poisoned") = None;
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Enables or disables the cache. Disabling also drops the memo
    /// slots so a later re-enable cannot serve stale entries.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        if !enabled {
            *self.voc.lock().expect("solve cache poisoned") = None;
            *self.mpp.lock().expect("solve cache poisoned") = None;
        }
    }

    /// Whether the cache currently serves memoized results.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Whether either memo slot currently holds an entry.
    pub fn is_warm(&self) -> bool {
        self.voc.lock().expect("solve cache poisoned").is_some()
            || self.mpp.lock().expect("solve cache poisoned").is_some()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

impl Default for SolveCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Clones start cold: a cloned harvester is a new device, and sharing
/// memo slots across clones would let one platform's history leak into
/// another's (breaking seed-purity of ensemble runs).
impl Clone for SolveCache {
    fn clone(&self) -> Self {
        let fresh = Self::new();
        fresh
            .enabled
            .store(self.enabled.load(Ordering::Relaxed), Ordering::Relaxed);
        fresh
    }
}

/// Caches are invisible to equality: two harvesters with identical
/// device parameters are the same device regardless of what either has
/// memoized. This keeps `PartialEq` derives on the harvester structs
/// meaning what they meant before the cache existed.
impl PartialEq for SolveCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_stored_bits_without_solving() {
        let cache = SolveCache::new();
        let key = [1, 2, 3, 4];
        let first = cache.voc(key, || 1.234_567_890_123);
        // A hit must not invoke the solver at all.
        let second = cache.voc(key, || unreachable!("must hit"));
        assert_eq!(first.to_bits(), second.to_bits());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn different_key_misses_and_replaces() {
        let cache = SolveCache::new();
        assert_eq!(cache.voc([1, 0, 0, 0], || 1.0), 1.0);
        assert_eq!(cache.voc([2, 0, 0, 0], || 2.0), 2.0);
        // The single slot now holds key 2; key 1 must re-solve.
        assert_eq!(cache.voc([1, 0, 0, 0], || 3.0), 3.0);
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn invalidate_forces_resolve() {
        let cache = SolveCache::new();
        cache.mpp([7, 7, 7, 7], || (1.0, 2.0));
        assert!(cache.is_warm());
        cache.invalidate();
        assert!(!cache.is_warm());
        let (v, i) = cache.mpp([7, 7, 7, 7], || (3.0, 4.0));
        assert_eq!((v, i), (3.0, 4.0));
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn disabled_cache_always_solves_and_never_counts() {
        let cache = SolveCache::new();
        cache.voc([1, 0, 0, 0], || 1.0);
        cache.set_enabled(false);
        assert_eq!(cache.voc([1, 0, 0, 0], || 9.0), 9.0);
        assert_eq!(cache.voc([1, 0, 0, 0], || 8.0), 8.0);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
        // Re-enabling starts cold: the pre-disable entry is gone.
        cache.set_enabled(true);
        assert_eq!(cache.voc([1, 0, 0, 0], || 5.0), 5.0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn clones_are_cold_and_equal() {
        let cache = SolveCache::new();
        cache.voc([1, 0, 0, 0], || 1.0);
        let copy = cache.clone();
        assert!(!copy.is_warm());
        assert_eq!(copy.stats(), CacheStats::default());
        assert_eq!(cache, copy);
    }

    #[test]
    fn stats_merge_and_hit_rate() {
        let mut a = CacheStats {
            hits: 3,
            misses: 1,
            invalidations: 0,
        };
        a.merge(CacheStats {
            hits: 1,
            misses: 3,
            invalidations: 2,
        });
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert_eq!(a.invalidations, 2);
        assert!((a.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
