//! Randomized invariants over every transducer model, driven by the
//! deterministic [`mseh_units::fuzz::Rng`] (seeds fixed, failures
//! reproduce exactly).

use mseh_env::EnvConditions;
use mseh_harvesters::{
    AcDcInput, FlowTurbine, PvModule, Rectenna, Teg, Transducer, VibrationHarvester,
};
use mseh_units::fuzz::Rng;
use mseh_units::{Celsius, GAccel, Hertz, Lux, MetersPerSecond, Seconds, Volts, WattsPerSqM};

fn menagerie() -> Vec<Box<dyn Transducer>> {
    vec![
        Box::new(PvModule::outdoor_panel_half_watt()),
        Box::new(PvModule::outdoor_panel_two_watt()),
        Box::new(PvModule::amorphous_indoor()),
        Box::new(FlowTurbine::micro_wind()),
        Box::new(FlowTurbine::micro_hydro()),
        Box::new(Teg::module_40mm()),
        Box::new(Teg::thin_film()),
        Box::new(VibrationHarvester::piezo_cantilever()),
        Box::new(VibrationHarvester::electromagnetic()),
        Box::new(Rectenna::rectenna_915mhz()),
        Box::new(AcDcInput::bench_supply_12v()),
    ]
}

/// A randomized environment covering every channel.
fn random_env(rng: &mut Rng) -> EnvConditions {
    let mut env = EnvConditions::quiescent(Seconds::ZERO);
    env.irradiance = WattsPerSqM::new(rng.in_range(0.0, 1200.0));
    env.illuminance = Lux::new(rng.in_range(0.0, 2000.0));
    env.wind = MetersPerSecond::new(rng.in_range(0.0, 20.0));
    let ambient = rng.in_range(-10.0, 45.0);
    env.ambient = Celsius::new(ambient);
    env.hot_surface = Celsius::new(ambient + rng.in_range(0.0, 80.0));
    env.vibration_amp = GAccel::new(rng.in_range(0.0, 2.0));
    env.vibration_freq = Hertz::new(rng.in_range(10.0, 200.0));
    env.rf_incident = mseh_units::Watts::new(rng.in_range(0.0, 1e-3));
    env.water_flow = MetersPerSecond::new(rng.in_range(0.0, 4.0));
    env
}

/// Every transducer: current is non-negative and finite at every
/// terminal voltage, zero at/above the open-circuit voltage, and the
/// I–V curve is non-increasing (passivity).
#[test]
fn iv_curves_are_passive() {
    let mut rng = Rng::new(0x4A0);
    for _ in 0..48 {
        let env = random_env(&mut rng);
        for h in menagerie() {
            let voc = h.open_circuit_voltage(&env);
            assert!(voc.is_finite() && voc.value() >= 0.0, "{}", h.name());
            let mut prev = f64::INFINITY;
            for i in 0..=40 {
                let v = Volts::new(voc.value().max(1.0) * i as f64 / 40.0 * 1.2);
                let current = h.current_at(v, &env);
                assert!(current.value() >= 0.0, "{} at {v}", h.name());
                assert!(current.is_finite(), "{} at {v}", h.name());
                assert!(
                    current.value() <= prev + 1e-12,
                    "{}: I rose at {v}",
                    h.name()
                );
                prev = current.value();
            }
            if voc.value() > 0.0 {
                let above = h.current_at(voc * 1.01, &env);
                assert!(above.value() <= 1e-9, "{} conducts above Voc", h.name());
            }
        }
    }
}

/// The numeric MPP is a true maximum: no sampled point on the curve
/// delivers more power (within tolerance).
#[test]
fn mpp_is_maximal() {
    let mut rng = Rng::new(0x4A1);
    for _ in 0..48 {
        let env = random_env(&mut rng);
        for h in menagerie() {
            let voc = h.open_circuit_voltage(&env);
            let mpp = h.mpp(&env);
            assert!(mpp.power().value() >= -1e-15);
            for i in 1..40 {
                let v = voc * (i as f64 / 40.0);
                let p = h.power_at(v, &env);
                assert!(
                    p.value() <= mpp.power().value() * (1.0 + 1e-6) + 1e-12,
                    "{}: P({v}) = {p} beats MPP {}",
                    h.name(),
                    mpp.power()
                );
            }
        }
    }
}

/// A dead environment yields a dead source (except the external
/// AC/DC input, which is environment-independent by design).
#[test]
fn quiescent_environment_yields_nothing() {
    let env = EnvConditions::quiescent(Seconds::ZERO);
    for h in menagerie() {
        if h.kind() == mseh_harvesters::HarvesterKind::ExternalAcDc {
            continue;
        }
        assert!(
            h.mpp(&env).power().value() <= 1e-12,
            "{} produces power from nothing",
            h.name()
        );
    }
}

/// Monotone resource response: more irradiance never reduces PV MPP
/// power; more wind below rated never reduces turbine MPP power.
#[test]
fn resource_monotonicity() {
    let mut rng = Rng::new(0x4A2);
    for _ in 0..64 {
        let g1 = rng.in_range(0.0, 1000.0);
        let g2 = rng.in_range(0.0, 1000.0);
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let pv = PvModule::outdoor_panel_half_watt();
        let mut env_lo = EnvConditions::quiescent(Seconds::ZERO);
        env_lo.irradiance = WattsPerSqM::new(lo);
        let mut env_hi = env_lo;
        env_hi.irradiance = WattsPerSqM::new(hi);
        assert!(pv.mpp(&env_hi).power().value() >= pv.mpp(&env_lo).power().value() - 1e-12);

        let wind = FlowTurbine::micro_wind();
        let (w_lo, w_hi) = (lo / 1000.0 * 9.0, hi / 1000.0 * 9.0); // within rated span
        let mut env_lo = EnvConditions::quiescent(Seconds::ZERO);
        env_lo.wind = MetersPerSecond::new(w_lo);
        let mut env_hi = env_lo;
        env_hi.wind = MetersPerSecond::new(w_hi);
        assert!(wind.mpp(&env_hi).power().value() >= wind.mpp(&env_lo).power().value() - 1e-12);
    }
}

/// Thevenin consistency: for the Thevenin-backed sources the MPP sits
/// at half the open-circuit voltage.
#[test]
fn thevenin_mpp_at_half_voc() {
    let mut rng = Rng::new(0x4A3);
    for _ in 0..64 {
        let dt = rng.in_range(5.0, 60.0);
        let wind = rng.in_range(3.0, 8.9);
        let teg = Teg::module_40mm();
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.hot_surface = Celsius::new(20.0 + dt);
        let mpp = teg.mpp(&env);
        let voc = teg.open_circuit_voltage(&env);
        assert!((mpp.voltage.value() - 0.5 * voc.value()).abs() < 1e-5);

        let turbine = FlowTurbine::micro_wind();
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.wind = MetersPerSecond::new(wind);
        let mpp = turbine.mpp(&env);
        let voc = turbine.open_circuit_voltage(&env);
        assert!((mpp.voltage.value() - 0.5 * voc.value()).abs() < 1e-5);
    }
}
