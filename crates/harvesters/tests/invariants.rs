//! Property-based invariants over every transducer model.

use mseh_env::EnvConditions;
use mseh_harvesters::{
    AcDcInput, FlowTurbine, PvModule, Rectenna, Teg, Transducer, VibrationHarvester,
};
use mseh_units::{
    Celsius, GAccel, Hertz, Lux, MetersPerSecond, Seconds, Volts, Watts, WattsPerSqM,
};
use proptest::prelude::*;

fn menagerie() -> Vec<Box<dyn Transducer>> {
    vec![
        Box::new(PvModule::outdoor_panel_half_watt()),
        Box::new(PvModule::outdoor_panel_two_watt()),
        Box::new(PvModule::amorphous_indoor()),
        Box::new(FlowTurbine::micro_wind()),
        Box::new(FlowTurbine::micro_hydro()),
        Box::new(Teg::module_40mm()),
        Box::new(Teg::thin_film()),
        Box::new(VibrationHarvester::piezo_cantilever()),
        Box::new(VibrationHarvester::electromagnetic()),
        Box::new(Rectenna::rectenna_915mhz()),
        Box::new(AcDcInput::bench_supply_12v()),
    ]
}

/// A randomized environment covering every channel.
fn env_strategy() -> impl Strategy<Value = EnvConditions> {
    (
        0.0..1200.0f64, // irradiance
        0.0..2000.0f64, // lux
        0.0..20.0f64,   // wind
        -10.0..45.0f64, // ambient
        0.0..80.0f64,   // hot surface offset
        0.0..2.0f64,    // vibration g
        10.0..200.0f64, // vibration Hz
        0.0..1e-3f64,   // rf W
        0.0..4.0f64,    // water m/s
    )
        .prop_map(|(g, lx, wind, amb, hot, vib, f, rf, water)| {
            let mut env = EnvConditions::quiescent(Seconds::ZERO);
            env.irradiance = WattsPerSqM::new(g);
            env.illuminance = Lux::new(lx);
            env.wind = MetersPerSecond::new(wind);
            env.ambient = Celsius::new(amb);
            env.hot_surface = Celsius::new(amb + hot);
            env.vibration_amp = GAccel::new(vib);
            env.vibration_freq = Hertz::new(f);
            env.rf_incident = Watts::new(rf);
            env.water_flow = MetersPerSecond::new(water);
            env
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every transducer: current is non-negative and finite at every
    /// terminal voltage, zero at/above the open-circuit voltage, and the
    /// I–V curve is non-increasing (passivity).
    #[test]
    fn iv_curves_are_passive(env in env_strategy()) {
        for h in menagerie() {
            let voc = h.open_circuit_voltage(&env);
            prop_assert!(voc.is_finite() && voc.value() >= 0.0, "{}", h.name());
            let mut prev = f64::INFINITY;
            for i in 0..=40 {
                let v = Volts::new(voc.value().max(1.0) * i as f64 / 40.0 * 1.2);
                let current = h.current_at(v, &env);
                prop_assert!(current.value() >= 0.0, "{} at {v}", h.name());
                prop_assert!(current.is_finite(), "{} at {v}", h.name());
                prop_assert!(
                    current.value() <= prev + 1e-12,
                    "{}: I rose at {v}", h.name()
                );
                prev = current.value();
            }
            if voc.value() > 0.0 {
                let above = h.current_at(voc * 1.01, &env);
                prop_assert!(above.value() <= 1e-9, "{} conducts above Voc", h.name());
            }
        }
    }

    /// The numeric MPP is a true maximum: no sampled point on the curve
    /// delivers more power (within tolerance).
    #[test]
    fn mpp_is_maximal(env in env_strategy()) {
        for h in menagerie() {
            let voc = h.open_circuit_voltage(&env);
            let mpp = h.mpp(&env);
            prop_assert!(mpp.power().value() >= -1e-15);
            for i in 1..40 {
                let v = voc * (i as f64 / 40.0);
                let p = h.power_at(v, &env);
                prop_assert!(
                    p.value() <= mpp.power().value() * (1.0 + 1e-6) + 1e-12,
                    "{}: P({v}) = {p} beats MPP {}", h.name(), mpp.power()
                );
            }
        }
    }

    /// A dead environment yields a dead source (except the external
    /// AC/DC input, which is environment-independent by design).
    #[test]
    fn quiescent_environment_yields_nothing(_x in 0..1u8) {
        let env = EnvConditions::quiescent(Seconds::ZERO);
        for h in menagerie() {
            if h.kind() == mseh_harvesters::HarvesterKind::ExternalAcDc {
                continue;
            }
            prop_assert!(
                h.mpp(&env).power().value() <= 1e-12,
                "{} produces power from nothing", h.name()
            );
        }
    }

    /// Monotone resource response: more irradiance never reduces PV MPP
    /// power; more wind below rated never reduces turbine MPP power.
    #[test]
    fn resource_monotonicity(g1 in 0.0..1000.0f64, g2 in 0.0..1000.0f64) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let pv = PvModule::outdoor_panel_half_watt();
        let mut env_lo = EnvConditions::quiescent(Seconds::ZERO);
        env_lo.irradiance = WattsPerSqM::new(lo);
        let mut env_hi = env_lo;
        env_hi.irradiance = WattsPerSqM::new(hi);
        prop_assert!(
            pv.mpp(&env_hi).power().value() >= pv.mpp(&env_lo).power().value() - 1e-12
        );

        let wind = FlowTurbine::micro_wind();
        let (w_lo, w_hi) = (lo / 1000.0 * 9.0, hi / 1000.0 * 9.0); // within rated span
        let mut env_lo = EnvConditions::quiescent(Seconds::ZERO);
        env_lo.wind = MetersPerSecond::new(w_lo);
        let mut env_hi = env_lo;
        env_hi.wind = MetersPerSecond::new(w_hi);
        prop_assert!(
            wind.mpp(&env_hi).power().value() >= wind.mpp(&env_lo).power().value() - 1e-12
        );
    }

    /// Thevenin consistency: for the Thevenin-backed sources the MPP sits
    /// at half the open-circuit voltage.
    #[test]
    fn thevenin_mpp_at_half_voc(dt in 5.0..60.0f64, wind in 3.0..8.9f64) {
        let teg = Teg::module_40mm();
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.hot_surface = Celsius::new(20.0 + dt);
        let mpp = teg.mpp(&env);
        let voc = teg.open_circuit_voltage(&env);
        prop_assert!((mpp.voltage.value() - 0.5 * voc.value()).abs() < 1e-5);

        let turbine = FlowTurbine::micro_wind();
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.wind = MetersPerSecond::new(wind);
        let mpp = turbine.mpp(&env);
        let voc = turbine.open_circuit_voltage(&env);
        prop_assert!((mpp.voltage.value() - 0.5 * voc.value()).abs() < 1e-5);
    }
}
