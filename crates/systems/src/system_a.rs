//! System A — the Smart Power Unit (Magno et al., DATE 2012; Fig. 1 of
//! the survey).
//!
//! Outdoor platform, mW power budget: two PV inputs and a micro wind
//! turbine with perturb-and-observe MPPT, a supercapacitor working buffer
//! plus a LiPo rechargeable and a hydrogen fuel-cell backup, a buck-boost
//! 3.3 V output, and a dedicated supervisory MCU exposing a two-way I²C
//! interface. Energy hardware is soldered down (Table I: swappable
//! harvesters/storage — No). Quiescent: 5 µA.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{
    IntelligenceLocation, InterfaceKind, PortRequirement, PowerUnit, StoreRole, Supervisor,
};
use mseh_node::MonitoringLevel;
use mseh_storage::{Battery, FuelCell, Supercap};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "Smart Power Unit";

/// Builds the Smart Power Unit with its commissioning loadout.
///
/// The supercap starts at 1.8 V (mid-charge) so cold-start behaviour is
/// realistic without requiring a bootstrap phase.
pub fn build() -> PowerUnit {
    let bus = Volts::new(5.0);
    let fe = |label: &str| {
        parts::front_end(label, bus, Watts::from_micro(1.0), Watts::from_milli(500.0))
    };
    let pv_main = parts::channel(
        harvesters::pv_large(),
        Tracking::PerturbObserve,
        Protection::IdealDiode,
        fe("PV main front-end"),
    );
    let pv_aux = parts::channel(
        harvesters::pv_small(),
        Tracking::PerturbObserve,
        Protection::IdealDiode,
        fe("PV aux front-end"),
    );
    let wind = parts::channel(
        harvesters::wind(),
        Tracking::PerturbObserve,
        Protection::IdealDiode,
        fe("wind front-end"),
    );

    let mut supercap = Supercap::edlc_22f();
    supercap.set_voltage(Volts::new(1.8));
    let mut lipo = Battery::lipo_400mah();
    lipo.set_soc(0.5);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "PV main",
                Volts::ZERO,
                Volts::new(8.0),
                vec![mseh_harvesters::HarvesterKind::Photovoltaic],
            ),
            Some(pv_main),
            false,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "PV aux",
                Volts::ZERO,
                Volts::new(8.0),
                vec![mseh_harvesters::HarvesterKind::Photovoltaic],
            ),
            Some(pv_aux),
            false,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "wind",
                Volts::ZERO,
                Volts::new(12.0),
                vec![mseh_harvesters::HarvesterKind::WindTurbine],
            ),
            Some(wind),
            false,
        )
        .store_port(
            PortRequirement::any_in_window("supercap", Volts::ZERO, Volts::new(3.0)),
            Some(Box::new(supercap)),
            StoreRole::PrimaryBuffer,
            false,
        )
        .store_port(
            PortRequirement::any_in_window("LiPo", Volts::ZERO, Volts::new(4.3)),
            Some(Box::new(lipo)),
            StoreRole::SecondaryBuffer,
            false,
        )
        .store_port(
            PortRequirement::any_in_window("fuel cell", Volts::ZERO, Volts::new(4.0)),
            Some(Box::new(FuelCell::hydrogen_cartridge())),
            StoreRole::Backup,
            false,
        )
        .supervisor(Supervisor {
            location: IntelligenceLocation::PowerUnit,
            monitoring: MonitoringLevel::Full,
            interface: InterfaceKind::Digital { two_way: true },
            // Budgeted so the platform's total idle draw lands on
            // Table I's 5 µA at the 3.3 V rail.
            overhead: Watts::from_micro(6.8),
        })
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.3),
            Watts::from_micro(4.0),
        )))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;
    use mseh_env::Environment;
    use mseh_units::Seconds;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "3/3");
        assert!(r.swappable_sensor_node);
        assert_eq!(r.swappable_storage, 0); // "No"
        assert_eq!(r.swappable_harvesters, 0); // "No"
        assert_eq!(r.energy_monitoring, MonitoringLevel::Full); // "Yes"
        assert!(r.digital_interface); // "Yes"
        assert!(!r.commercial);
        // Quiescent: 5 µA.
        assert!(
            (r.quiescent.as_micro() - 5.0).abs() < 0.5,
            "quiescent {}",
            r.quiescent
        );
        // Harvesters: Light, Wind.
        assert_eq!(r.harvesters_cell(), "Light, Wind");
        // Storage: fuel cell, Li-ion, supercap.
        let cell = r.storage_cell();
        for needle in ["Fuel cell", "Li-ion rech. batt.", "Supercap"] {
            assert!(cell.contains(needle), "{cell}");
        }
        assert_eq!(r.intelligence, IntelligenceLocation::PowerUnit);
    }

    #[test]
    fn harvests_milliwatts_outdoors_at_noon() {
        let mut unit = build();
        let env = Environment::outdoor_temperate(11);
        let mut last = None;
        for minute in 0..120 {
            let t = Seconds::from_hours(11.0) + Seconds::from_minutes(minute as f64);
            last = Some(unit.step(
                &env.conditions(t),
                Seconds::new(60.0),
                Watts::from_milli(2.0),
            ));
        }
        let report = last.expect("ran");
        let avg_harvest_mw = report.harvested.value() / 60.0 * 1e3;
        // "its power budget is of the order of a few milliwatts" — the
        // harvest at noon comfortably exceeds it.
        assert!(avg_harvest_mw > 2.0, "harvest {avg_harvest_mw} mW");
        assert!(report.fully_served());
    }

    #[test]
    fn fuel_cell_is_the_backup_of_last_resort() {
        let unit = build();
        let backup = unit.store_ports()[2].device().expect("fuel cell");
        assert_eq!(backup.kind(), mseh_storage::StorageKind::FuelCell);
        assert_eq!(unit.store_ports()[2].role(), StoreRole::Backup);
    }

    #[test]
    fn hardware_is_soldered_down() {
        let mut unit = build();
        // Detaching works (bench rework), but re-attachment to a
        // non-swappable port is refused — the survey's "soldered" level.
        unit.detach_harvester(0);
        let ch = parts::channel(
            harvesters::pv_small(),
            Tracking::PerturbObserve,
            Protection::IdealDiode,
            parts::front_end(
                "x",
                Volts::new(5.0),
                Watts::from_micro(1.0),
                Watts::from_milli(100.0),
            ),
        );
        assert!(unit.attach_harvester(0, ch, Volts::new(6.0), None).is_err());
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!((micro - 5.0).abs() < 0.5, "quiescent {micro} uA");
    }
}
