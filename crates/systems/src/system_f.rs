//! System F — Cymbet EnerChip EP Universal Energy Harvester Eval Kit
//! (EVAL-09, 2012).
//!
//! Commercial universal evaluation kit: four swappable inputs (light,
//! radio, thermal, vibration) with the documented input-window split —
//! certain inputs must stay below 4.06 V, others must sit between 4.06 V
//! and 20 V — charging a soldered thin-film battery with an optional
//! external lithium cell. A dedicated controller provides energy
//! monitoring and a digital interface. Quiescent: 20 µA.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{
    IntelligenceLocation, InterfaceKind, PortRequirement, PowerUnit, StoreRole, Supervisor,
};
use mseh_harvesters::HarvesterKind;
use mseh_node::MonitoringLevel;
use mseh_storage::{Battery, StorageKind};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "Cymbet EVAL-09";

/// The documented low-input window ceiling: 4.06 V.
pub const LOW_WINDOW_CEILING: Volts = Volts::new(4.06);

/// Builds the EVAL-09 with light, radio, thermal and vibration inputs.
pub fn build() -> PowerUnit {
    let bus = Volts::new(4.1);
    let fe = |label: &str| {
        parts::front_end(label, bus, Watts::from_micro(6.0), Watts::from_milli(200.0))
    };
    let light = parts::channel(
        harvesters::pv_indoor(),
        Tracking::FractionalVocPv,
        Protection::Schottky,
        fe("light input"),
    );
    let radio = parts::channel(
        harvesters::rectenna(),
        Tracking::Fixed(Volts::new(1.0)),
        Protection::Schottky,
        fe("radio input"),
    );
    let thermal = parts::channel(
        harvesters::teg(),
        Tracking::FractionalVocThevenin,
        Protection::Schottky,
        fe("thermal input"),
    );
    let vibration = parts::channel(
        harvesters::piezo(),
        Tracking::Fixed(Volts::new(2.0)),
        Protection::Schottky,
        fe("vibration input"),
    );

    let mut cell = Battery::thin_film_50uah();
    cell.set_soc(0.5);

    PowerUnit::builder(NAME)
        // Low-window inputs: "certain inputs must be below 4.06 V".
        .harvester_port(
            PortRequirement::harvester_port(
                "CH1 (<4.06 V)",
                Volts::ZERO,
                LOW_WINDOW_CEILING,
                vec![HarvesterKind::Thermoelectric, HarvesterKind::RfRectenna],
            ),
            Some(thermal),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "CH2 (<4.06 V)",
                Volts::ZERO,
                LOW_WINDOW_CEILING,
                vec![HarvesterKind::RfRectenna, HarvesterKind::Photovoltaic],
            ),
            Some(radio),
            true,
        )
        // High-window inputs: "others must be between 4.06 V and 20 V".
        .harvester_port(
            PortRequirement::harvester_port(
                "CH3 (4.06–20 V)",
                LOW_WINDOW_CEILING,
                Volts::new(20.0),
                vec![HarvesterKind::Photovoltaic, HarvesterKind::Piezoelectric],
            ),
            Some(light),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "CH4 (4.06–20 V)",
                LOW_WINDOW_CEILING,
                Volts::new(20.0),
                vec![HarvesterKind::Piezoelectric, HarvesterKind::Electromagnetic],
            ),
            Some(vibration),
            true,
        )
        .store_port(
            PortRequirement::any_in_window("EnerChip (soldered)", Volts::ZERO, Volts::new(4.2)),
            Some(Box::new(cell)),
            StoreRole::PrimaryBuffer,
            false,
        )
        .store_port(
            PortRequirement::storage_port(
                "optional ext. Li battery",
                Volts::ZERO,
                Volts::new(4.3),
                vec![StorageKind::LiIon, StorageKind::LiPrimary],
            ),
            None, // optional, unpopulated by default
            StoreRole::SecondaryBuffer,
            true,
        )
        .supervisor(Supervisor {
            location: IntelligenceLocation::PowerUnit,
            monitoring: MonitoringLevel::Full,
            interface: InterfaceKind::Digital { two_way: false },
            overhead: Watts::from_micro(30.0),
        })
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.3),
            Watts::from_micro(12.0),
        )))
        .commercial(true)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "4/2");
        assert!(r.swappable_sensor_node); // "Yes"
        assert_eq!(r.swappable_storage, 1); // "Yes, battery"
        assert_eq!(r.swappable_harvesters, 4); // "Yes, 4"
        assert_eq!(r.energy_monitoring, MonitoringLevel::Full); // "Yes"
        assert!(r.digital_interface); // "Yes"
        assert!(r.commercial); // "Yes"
                               // Quiescent: 20 µA.
        assert!(
            (r.quiescent.as_micro() - 20.0).abs() < 2.0,
            "quiescent {}",
            r.quiescent
        );
        // Harvesters: Light, Radio, Thermal, Vibration.
        let cell = r.harvesters_cell();
        for needle in ["Light", "Radio", "Thermal", "Piezo"] {
            assert!(cell.contains(needle), "{cell}");
        }
        // Storage: thin-film + optional external lithium.
        let cell = r.storage_cell();
        assert!(cell.contains("Thin-film"), "{cell}");
        assert!(cell.contains("Li"), "{cell}");
        assert_eq!(r.intelligence, IntelligenceLocation::PowerUnit);
    }

    #[test]
    fn input_window_split_is_enforced() {
        // The survey's System F example: a 12 V source is refused on a
        // low-window channel and accepted on a high-window one.
        let mut unit = build();
        unit.detach_harvester(0); // CH1, <4.06 V
        unit.detach_harvester(2); // CH3, 4.06–20 V
        let make_rf = || {
            parts::channel(
                harvesters::rectenna(),
                Tracking::Fixed(Volts::new(1.0)),
                Protection::Schottky,
                parts::front_end(
                    "rf",
                    Volts::new(4.1),
                    Watts::from_micro(6.0),
                    Watts::from_milli(10.0),
                ),
            )
        };
        // A 12 V-rated device violates CH1's window...
        assert!(unit
            .attach_harvester(0, make_rf(), Volts::new(12.0), None)
            .is_err());
        // ...and its kind is refused on CH3 even at a legal voltage.
        assert!(unit
            .attach_harvester(2, make_rf(), Volts::new(12.0), None)
            .is_err());
        // A 2 V rectenna fits CH1.
        assert!(unit
            .attach_harvester(0, make_rf(), Volts::new(2.0), None)
            .is_ok());
    }

    #[test]
    fn optional_battery_slot_ships_empty() {
        let unit = build();
        assert!(unit.store_ports()[1].device().is_none());
        assert!(unit.store_ports()[1].is_swappable());
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!((micro - 20.0).abs() < 2.0, "quiescent {micro} uA");
    }
}
