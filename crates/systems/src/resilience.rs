//! Resilience presets: seeded fault scenarios for every Table-I
//! platform.
//!
//! The survey's redundancy argument — multiple harvesters *and*
//! multiple stores exist so the platform survives a component dying in
//! the field — is only testable if components actually die. This
//! module pairs each surveyed platform with a stress plan in its
//! natural deployment: the primary store fails open intermittently
//! (connector corrosion, cell dropout) and the lead harvester glitches
//! (shading, fouling, loose lead), both on seeded stochastic
//! timelines, while a [`FailoverPolicy`] wraps the policy tier the
//! platform's monitoring level supports.
//!
//! Feed [`resilience_scenario`] straight into
//! [`mseh_sim::run_resilience_campaign`]:
//!
//! ```
//! use mseh_systems::{resilience, SystemId};
//! use mseh_sim::{run_resilience_campaign, CampaignConfig};
//! use mseh_units::Seconds;
//!
//! let horizon = Seconds::from_hours(12.0);
//! let summary = run_resilience_campaign(
//!     &[1, 2],
//!     |seed| resilience::resilience_scenario(SystemId::D, seed, horizon),
//!     &resilience::natural_node(SystemId::D),
//!     CampaignConfig::over(horizon),
//! );
//! assert_eq!(summary.outcomes.len(), 2);
//! assert!(summary.worst_audit_relative < 1e-6);
//! ```

use crate::SystemId;
use mseh_core::PowerUnit;
use mseh_env::Environment;
use mseh_node::{
    DutyCyclePolicy, EnergyNeutral, FailoverPolicy, FixedDuty, SensorNode, VoltageThreshold,
};
use mseh_sim::{FaultScenario, FaultSchedule, GlitchingHarvester, IntermittentStorage};
use mseh_units::{DutyCycle, Seconds};

/// Decorrelates the harvester glitch timeline from the store fault
/// timeline drawn from the same campaign seed.
const GLITCH_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The environment each platform was designed for, seeded.
pub fn natural_environment(id: SystemId, seed: u64) -> Environment {
    match id {
        SystemId::A | SystemId::C => Environment::outdoor_temperate(seed),
        SystemId::D => Environment::agricultural(seed),
        SystemId::B | SystemId::E | SystemId::F | SystemId::G => {
            Environment::indoor_industrial(seed)
        }
    }
}

/// A load each platform class can plausibly carry.
pub fn natural_node(id: SystemId) -> SensorNode {
    match id {
        SystemId::A | SystemId::C | SystemId::D => SensorNode::milliwatt_class(),
        _ => SensorNode::submilliwatt_class(),
    }
}

/// The strongest duty-cycle policy the platform's Table-I monitoring
/// tier supports: full monitoring (A, B, F) runs the energy-neutral
/// controller, limited monitoring (D) the voltage ladder, and the
/// blind platforms (C, E, G) a fixed conservative duty.
pub fn natural_policy(id: SystemId) -> Box<dyn DutyCyclePolicy> {
    match id {
        SystemId::A | SystemId::B | SystemId::F => Box::new(EnergyNeutral::new()),
        SystemId::D => Box::new(VoltageThreshold::supercap_ladder()),
        SystemId::C | SystemId::E | SystemId::G => {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.05)))
        }
    }
}

/// The stress plan for the platform's primary store: seeded stochastic
/// fail-open windows. The DIY research platforms (A–D) see field-grade
/// abuse (mean 6 h up, 45 min down); the potted commercial modules
/// (E–G) fail half as often but take as long to recover.
pub fn store_fault_plan(id: SystemId, seed: u64, horizon: Seconds) -> FaultSchedule {
    let (mean_up, mean_down) = match id {
        SystemId::A | SystemId::B | SystemId::C | SystemId::D => {
            (Seconds::from_hours(6.0), Seconds::from_minutes(45.0))
        }
        SystemId::E | SystemId::F | SystemId::G => {
            (Seconds::from_hours(12.0), Seconds::from_minutes(45.0))
        }
    };
    FaultSchedule::stochastic(seed, mean_up, mean_down, horizon)
}

/// The glitch plan for the platform's lead harvester: shorter, more
/// frequent dropouts than store faults (mean 3 h up, 15 min down),
/// decorrelated from the store plan drawn with the same seed.
pub fn harvester_glitch_plan(seed: u64, horizon: Seconds) -> FaultSchedule {
    FaultSchedule::stochastic(
        seed ^ GLITCH_SALT,
        Seconds::from_hours(3.0),
        Seconds::from_minutes(15.0),
        horizon,
    )
}

/// Builds the full seeded fault scenario for a platform: the unit with
/// its primary store and lead harvester instrumented, its natural
/// environment, and a [`FailoverPolicy`] around its natural policy.
///
/// Scenarios assume the campaign starts at `t = 0` (the store wrapper's
/// fault clock is run-relative operating time).
///
/// # Panics
///
/// Panics if the platform has no populated store port (all seven
/// Table-I systems ship with one).
pub fn resilience_scenario(id: SystemId, seed: u64, horizon: Seconds) -> FaultScenario<PowerUnit> {
    let mut unit = id.build();
    let store_plan = store_fault_plan(id, seed, horizon);

    let store_port = unit
        .store_ports()
        .iter()
        .position(|p| p.device().is_some())
        .expect("every surveyed platform ships with a store");
    let plan = store_plan.clone();
    assert!(
        unit.instrument_store(store_port, move |inner| {
            Box::new(IntermittentStorage::new(inner, plan))
        }),
        "store port {store_port} must be instrumentable"
    );

    if let Some(harvester_port) = unit
        .harvester_ports()
        .iter()
        .position(|p| p.channel().is_some())
    {
        let glitch = harvester_glitch_plan(seed, horizon);
        unit.instrument_harvester(harvester_port, move |inner| {
            Box::new(GlitchingHarvester::new(inner, glitch))
        });
    }

    FaultScenario::new(
        unit,
        natural_environment(id, seed),
        Box::new(FailoverPolicy::new(natural_policy(id))),
        store_plan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_sim::{run_resilience_campaign_with_threads, CampaignConfig};

    #[test]
    fn every_platform_has_a_buildable_scenario() {
        // Long enough that even the commercial platforms' 12 h mean
        // up-time all but guarantees a drawn fault (and the draws are
        // deterministic per seed, so this can't flake).
        let horizon = Seconds::from_days(3.0);
        for id in SystemId::ALL {
            let scenario = resilience_scenario(id, 11, horizon);
            assert!(
                !scenario.schedule.is_empty(),
                "{id}: stress plan drew no faults over {horizon}"
            );
            assert!(scenario.policy.name().contains("failover"), "{id}");
            // The store wrapper is installed on the primary port.
            let port = scenario
                .platform
                .store_ports()
                .iter()
                .find(|p| p.device().is_some())
                .expect("store present");
            assert!(
                port.device()
                    .expect("present")
                    .name()
                    .contains("intermittent"),
                "{id}: primary store not instrumented"
            );
        }
    }

    #[test]
    fn scenarios_are_pure_functions_of_their_seed() {
        let horizon = Seconds::from_hours(6.0);
        let a = store_fault_plan(SystemId::A, 5, horizon);
        let b = store_fault_plan(SystemId::A, 5, horizon);
        assert_eq!(a, b);
        assert_ne!(a, store_fault_plan(SystemId::A, 6, horizon));
        // Store and glitch plans from one seed are decorrelated.
        assert_ne!(a.windows(), harvester_glitch_plan(5, horizon).windows());
    }

    #[test]
    fn campaign_runs_clean_for_a_commercial_platform() {
        let horizon = Seconds::from_hours(8.0);
        let summary = run_resilience_campaign_with_threads(
            2,
            &[1, 2],
            |seed| resilience_scenario(SystemId::E, seed, horizon),
            &natural_node(SystemId::E),
            CampaignConfig::over(horizon),
        );
        assert!(summary.worst_audit_relative < 1e-6, "{summary:?}");
        assert!(summary.total_faults > 0, "{summary:?}");
    }
}
