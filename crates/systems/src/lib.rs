//! The seven multi-source harvesting platforms of the survey's Table I,
//! as ready-to-simulate [`mseh_core::PowerUnit`] models.
//!
//! | Id | Platform | Module |
//! |---|---|---|
//! | A | Smart Power Unit (Magno et al., DATE 2012) | [`system_a`] |
//! | B | Plug-and-Play (Weddell et al., SECON 2009) | [`system_b`] |
//! | C | AmbiMax (Park & Chou, SECON 2006) | [`system_c`] |
//! | D | MPWiNode (Morais et al., 2008) | [`system_d`] |
//! | E | Maxim MAX17710 Eval Kit | [`system_e`] |
//! | F | Cymbet EnerChip EVAL-09 | [`system_f`] |
//! | G | MicroStrain EH-Link | [`system_g`] |
//!
//! The [`prometheus`] module additionally models the survey's historical
//! single-source baseline (not a Table-I column) for before/after
//! comparisons.
//!
//! Each model's Table-I row (port counts, swappability, monitoring tier,
//! interface, quiescent current, device kinds, commercial flag) is
//! *computed* by [`mseh_core::classify`] and checked against the paper's
//! values in that module's tests — the table the benchmarks print is a
//! measurement, not a transcription.
//!
//! # Examples
//!
//! ```
//! use mseh_systems::{all_systems, SystemId};
//! use mseh_core::{classify, render_table};
//!
//! let records: Vec<_> = all_systems()
//!     .iter()
//!     .map(|unit| classify(unit))
//!     .collect();
//! let table = render_table(&records);
//! assert!(table.contains("Smart Power Unit"));
//! assert!(table.contains("6 (shared)"));
//! assert_eq!(SystemId::ALL.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interfaced;
pub mod parts;
pub mod prometheus;
pub mod resilience;
mod survey;
pub mod system_a;
pub mod system_b;
pub mod system_c;
pub mod system_d;
pub mod system_e;
pub mod system_f;
pub mod system_g;

pub use interfaced::InterfacedStorage;
pub use survey::{site_survey, SurveyReport, SurveyRow};

use mseh_core::PowerUnit;

/// Identifies one of the surveyed platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SystemId {
    /// Smart Power Unit.
    A,
    /// Plug-and-Play.
    B,
    /// AmbiMax.
    C,
    /// MPWiNode.
    D,
    /// Maxim MAX17710 Eval.
    E,
    /// Cymbet EVAL-09.
    F,
    /// MicroStrain EH-Link.
    G,
}

impl SystemId {
    /// All seven platforms in Table-I order.
    pub const ALL: [SystemId; 7] = [
        SystemId::A,
        SystemId::B,
        SystemId::C,
        SystemId::D,
        SystemId::E,
        SystemId::F,
        SystemId::G,
    ];

    /// Builds the platform model.
    pub fn build(self) -> PowerUnit {
        match self {
            SystemId::A => system_a::build(),
            SystemId::B => system_b::build(),
            SystemId::C => system_c::build(),
            SystemId::D => system_d::build(),
            SystemId::E => system_e::build(),
            SystemId::F => system_f::build(),
            SystemId::G => system_g::build(),
        }
    }

    /// The platform's Table-I display name.
    pub fn display_name(self) -> &'static str {
        match self {
            SystemId::A => system_a::NAME,
            SystemId::B => system_b::NAME,
            SystemId::C => system_c::NAME,
            SystemId::D => system_d::NAME,
            SystemId::E => system_e::NAME,
            SystemId::F => system_f::NAME,
            SystemId::G => system_g::NAME,
        }
    }
}

impl core::fmt::Display for SystemId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "System {self:?} ({})", self.display_name())
    }
}

/// Builds all seven platforms in Table-I order.
pub fn all_systems() -> Vec<PowerUnit> {
    SystemId::ALL.iter().map(|id| id.build()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;

    #[test]
    fn seven_distinct_platforms() {
        let systems = all_systems();
        assert_eq!(systems.len(), 7);
        let mut names: Vec<&str> = systems.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn display_names_match_builds() {
        for id in SystemId::ALL {
            assert_eq!(id.build().name(), id.display_name());
            assert!(id.to_string().contains(id.display_name()));
        }
    }

    #[test]
    fn quiescent_ordering_matches_table_one() {
        // Table I: E (<1) < C (<5) ≈ A (5) < B (7) < F (20) < G (<32) < D (75).
        let q: Vec<f64> = SystemId::ALL
            .iter()
            .map(|id| classify(&id.build()).quiescent.as_micro())
            .collect();
        let (a, b, c, d, e, f, g) = (q[0], q[1], q[2], q[3], q[4], q[5], q[6]);
        assert!(e < c && e < a, "E lowest: {q:?}");
        assert!(a < b, "A < B: {q:?}");
        assert!(b < f, "B < F: {q:?}");
        assert!(f < g, "F < G: {q:?}");
        assert!(g < d, "G < D: {q:?}");
    }

    #[test]
    fn only_commercial_products_are_e_f_g() {
        let commercial: Vec<bool> = SystemId::ALL
            .iter()
            .map(|id| classify(&id.build()).commercial)
            .collect();
        assert_eq!(commercial, [false, false, false, false, true, true, true]);
    }

    #[test]
    fn only_a_and_f_offer_digital_interfaces() {
        let digital: Vec<bool> = SystemId::ALL
            .iter()
            .map(|id| classify(&id.build()).digital_interface)
            .collect();
        assert_eq!(digital, [true, false, false, false, false, true, false]);
    }

    #[test]
    fn only_d_and_g_fix_the_node_to_the_power_unit() {
        let swappable_node: Vec<bool> = SystemId::ALL
            .iter()
            .map(|id| classify(&id.build()).swappable_sensor_node)
            .collect();
        assert_eq!(swappable_node, [true, true, true, false, true, true, false]);
    }
}
