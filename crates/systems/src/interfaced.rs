//! Storage modules behind their own interface circuits — the defining
//! mechanism of the Plug-and-Play architecture (System B).
//!
//! "System B has a power conditioning board for each energy
//! harvester/storage device; these boards act as interfaces between the
//! energy devices and the power unit, meaning that voltages can be
//! converted and devices can be swapped easily." An [`InterfacedStorage`]
//! wraps any [`Storage`] device and presents the module-bus voltage to
//! the power unit, at the price of interface conversion losses and a
//! small standing draw on the wrapped cell.

use mseh_storage::{Storage, StorageKind};
use mseh_units::{Efficiency, Joules, Seconds, Volts, Watts};

/// A storage device behind a module interface circuit.
///
/// The wrapper presents a constant bus voltage while energy remains, so
/// the host's output stage sees a stable rail regardless of the inner
/// cell's chemistry — which is exactly what lets System B accept *any*
/// storage device without retuning its input conditioning.
///
/// # Examples
///
/// ```
/// use mseh_systems::InterfacedStorage;
/// use mseh_storage::{Supercap, Storage};
/// use mseh_units::{Volts, Watts, Seconds};
///
/// let mut cap = Supercap::edlc_22f();
/// cap.set_voltage(Volts::new(2.5));
/// let module = InterfacedStorage::module_4v1(Box::new(cap));
/// assert_eq!(module.voltage(), Volts::new(4.1));
/// ```
pub struct InterfacedStorage {
    inner: Box<dyn Storage>,
    name: String,
    bus_voltage: Volts,
    /// Interface conversion efficiency, applied per transfer direction.
    eta: Efficiency,
    /// Standing draw of the interface circuit, fed from the inner cell.
    quiescent: Watts,
    losses: Joules,
}

impl InterfacedStorage {
    /// Wraps `inner` behind an interface circuit.
    ///
    /// # Panics
    ///
    /// Panics if the bus voltage is not positive or the efficiency is
    /// zero.
    pub fn new(
        inner: Box<dyn Storage>,
        bus_voltage: Volts,
        eta: Efficiency,
        quiescent: Watts,
    ) -> Self {
        assert!(bus_voltage.value() > 0.0, "bus voltage must be positive");
        assert!(eta.value() > 0.0, "interface efficiency must be positive");
        let name = format!("{} (interfaced)", inner.name());
        Self {
            inner,
            name,
            bus_voltage,
            eta,
            quiescent,
            losses: Joules::ZERO,
        }
    }

    /// The standard Plug-and-Play module interface: 4.1 V bus, 85 %
    /// conversion, 0.5 µW standing draw.
    pub fn module_4v1(inner: Box<dyn Storage>) -> Self {
        Self::new(
            inner,
            Volts::new(4.1),
            Efficiency::saturating(0.85),
            Watts::from_micro(0.5),
        )
    }

    /// The wrapped device.
    pub fn inner(&self) -> &dyn Storage {
        self.inner.as_ref()
    }

    /// Mutable access to the wrapped device (e.g. to set its initial
    /// state of charge).
    pub fn inner_mut(&mut self) -> &mut dyn Storage {
        self.inner.as_mut()
    }
}

impl Storage for InterfacedStorage {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> StorageKind {
        self.inner.kind()
    }

    fn voltage(&self) -> Volts {
        if self.inner.is_depleted() {
            Volts::ZERO
        } else {
            self.bus_voltage
        }
    }

    fn stored_energy(&self) -> Joules {
        self.inner.stored_energy()
    }

    fn capacity(&self) -> Joules {
        self.inner.capacity()
    }

    fn min_voltage(&self) -> Volts {
        Volts::ZERO
    }

    fn max_voltage(&self) -> Volts {
        self.bus_voltage
    }

    fn max_charge_power(&self) -> Watts {
        self.inner.max_charge_power() / self.eta.value()
    }

    fn max_discharge_power(&self) -> Watts {
        self.inner.max_discharge_power() * self.eta.value()
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Joules {
        if power.value() <= 0.0 || dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        // The interface converts bus power to cell power at η.
        let inner_taken = self.inner.charge(power * self.eta, dt);
        let bus_taken = inner_taken / self.eta.value();
        self.losses += bus_taken - inner_taken;
        bus_taken
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Joules {
        if power.value() <= 0.0 || dt.value() <= 0.0 {
            return Joules::ZERO;
        }
        // Delivering `power` at the bus needs `power/η` from the cell.
        let inner_got = self.inner.discharge(power / self.eta.value(), dt);
        let delivered = inner_got * self.eta.value();
        self.losses += inner_got - delivered;
        delivered
    }

    fn idle(&mut self, dt: Seconds) {
        self.inner.idle(dt);
        // The interface circuit feeds its own housekeeping from the cell.
        let burned = self.inner.discharge(self.quiescent, dt);
        self.losses += burned;
    }

    fn losses(&self) -> Joules {
        self.inner.losses() + self.losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_storage::{Battery, Supercap};

    fn charged_module() -> InterfacedStorage {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(2.5));
        InterfacedStorage::module_4v1(Box::new(cap))
    }

    #[test]
    fn presents_bus_voltage_until_depleted() {
        let mut module = charged_module();
        assert_eq!(module.voltage(), Volts::new(4.1));
        // Drain it completely.
        for _ in 0..100_000 {
            module.discharge(Watts::new(1.0), Seconds::new(10.0));
        }
        assert_eq!(module.voltage(), Volts::ZERO);
        assert!(module.is_depleted());
    }

    #[test]
    fn any_chemistry_presents_the_same_bus() {
        let a = InterfacedStorage::module_4v1(Box::new(Supercap::edlc_22f()));
        let b = InterfacedStorage::module_4v1(Box::new(Battery::nimh_aa_pair()));
        assert_eq!(a.max_voltage(), b.max_voltage());
        assert_ne!(a.kind(), b.kind());
    }

    #[test]
    fn interface_losses_accrue_both_directions() {
        let mut module = charged_module();
        let taken = module.charge(Watts::from_milli(100.0), Seconds::new(60.0));
        let delivered = module.discharge(Watts::from_milli(100.0), Seconds::new(30.0));
        assert!(taken.value() > 0.0 && delivered.value() > 0.0);
        assert!(module.losses().value() > 0.0);
    }

    #[test]
    fn conservation_holds_through_the_interface() {
        let mut module = InterfacedStorage::module_4v1(Box::new(Supercap::edlc_22f()));
        let initial = module.stored_energy();
        let mut total_in = Joules::ZERO;
        let mut total_out = Joules::ZERO;
        for i in 0..50 {
            if i % 3 == 0 {
                total_in += module.charge(Watts::from_milli(200.0), Seconds::new(60.0));
            } else if i % 3 == 1 {
                total_out += module.discharge(Watts::from_milli(50.0), Seconds::new(60.0));
            } else {
                module.idle(Seconds::new(600.0));
            }
        }
        let balance = initial.value() + total_in.value()
            - total_out.value()
            - module.losses().value()
            - module.stored_energy().value();
        let scale = (initial.value() + total_in.value()).max(1.0);
        assert!(balance.abs() < 1e-6 * scale, "residual {balance}");
    }

    #[test]
    fn quiescent_drains_the_cell_over_time() {
        let mut module = charged_module();
        let before = module.stored_energy();
        module.idle(Seconds::from_days(2.0));
        assert!(module.stored_energy() < before);
    }

    #[test]
    fn inner_access() {
        let mut module = charged_module();
        assert!(module.inner().name().contains("EDLC"));
        module.inner_mut().idle(Seconds::new(1.0));
    }
}
