//! Shared component constructors for the seven platform models.
//!
//! Each platform's Table-I quiescent figure is the sum of its channel,
//! supervisor and output-stage standing draws, so the builders here take
//! explicit quiescent budgets; the per-system modules allocate their
//! budget to land on the paper's microamp figures (checked in tests).

use mseh_harvesters::{
    AcDcInput, FlowTurbine, PvModule, Rectenna, Teg, Transducer, VibrationHarvester,
};
use mseh_power::{
    DcDcConverter, DiodeStage, EfficiencyCurve, FixedPoint, FractionalVoc, IdealDiode,
    InputChannel, LinearRegulator, OperatingPointController, PerturbObserve, PowerStage, Topology,
};
use mseh_units::{Amps, Volts, Watts};

/// The tracking scheme a channel uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tracking {
    /// Digital perturb-and-observe (System A's MPPT).
    PerturbObserve,
    /// Fractional open-circuit voltage (AmbiMax-style analog MPPT).
    FractionalVocPv,
    /// Fractional Voc tuned for Thevenin-like sources.
    FractionalVocThevenin,
    /// Fixed operating point (System B's module compromise).
    Fixed(Volts),
}

impl Tracking {
    fn controller(self) -> Box<dyn OperatingPointController> {
        match self {
            Tracking::PerturbObserve => Box::new(PerturbObserve::new()),
            Tracking::FractionalVocPv => Box::new(FractionalVoc::pv_standard()),
            Tracking::FractionalVocThevenin => Box::new(FractionalVoc::thevenin_standard()),
            Tracking::Fixed(v) => Box::new(FixedPoint::new(v)),
        }
    }
}

/// The input-protection style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// Passive Schottky diode: free but lossy.
    Schottky,
    /// Active ideal diode: near-lossless, ~1 µW housekeeping.
    IdealDiode,
}

impl Protection {
    fn stage(self) -> Box<dyn PowerStage> {
        match self {
            Protection::Schottky => Box::new(DiodeStage::schottky_single()),
            Protection::IdealDiode => Box::new(IdealDiode::nanopower()),
        }
    }
}

/// A front-end converter with an explicit quiescent budget.
pub fn front_end(name: &str, bus: Volts, quiescent: Watts, rated: Watts) -> DcDcConverter {
    DcDcConverter::new(
        name.to_owned(),
        Topology::BuckBoost,
        Volts::new(0.25),
        Volts::new(20.0),
        bus,
        EfficiencyCurve::switching_premium(),
        rated,
        quiescent,
    )
}

/// An output buck-boost with an explicit quiescent budget.
pub fn output_buck_boost(bus: Volts, quiescent: Watts) -> DcDcConverter {
    DcDcConverter::new(
        format!("{:.1} V output buck-boost", bus.value()),
        Topology::BuckBoost,
        Volts::new(0.5),
        Volts::new(5.5),
        bus,
        EfficiencyCurve::switching_small(),
        Watts::from_milli(300.0),
        quiescent,
    )
}

/// An output LDO with an explicit quiescent current.
pub fn output_ldo(v_out: Volts, quiescent_current: Amps) -> LinearRegulator {
    LinearRegulator::new(
        format!("{:.1} V output LDO", v_out.value()),
        v_out,
        Volts::from_milli(150.0),
        Volts::new(6.0),
        quiescent_current,
        Amps::from_milli(150.0),
    )
}

/// Builds one input channel for the given harvester.
pub fn channel(
    harvester: Box<dyn Transducer>,
    tracking: Tracking,
    protection: Protection,
    converter: DcDcConverter,
) -> InputChannel {
    InputChannel::new(
        harvester,
        tracking.controller(),
        protection.stage(),
        Box::new(converter),
    )
}

/// The stock harvesters the platform models attach, by shorthand.
pub mod harvesters {
    use super::*;

    /// A 2 W outdoor panel (System A's main input).
    pub fn pv_large() -> Box<dyn Transducer> {
        Box::new(PvModule::outdoor_panel_two_watt())
    }

    /// A 0.5 W outdoor panel.
    pub fn pv_small() -> Box<dyn Transducer> {
        Box::new(PvModule::outdoor_panel_half_watt())
    }

    /// An amorphous indoor cell (Systems B/E/F light input).
    pub fn pv_indoor() -> Box<dyn Transducer> {
        Box::new(PvModule::amorphous_indoor())
    }

    /// A micro wind turbine.
    pub fn wind() -> Box<dyn Transducer> {
        Box::new(FlowTurbine::micro_wind())
    }

    /// A micro hydro generator (System D's water-flow input).
    pub fn hydro() -> Box<dyn Transducer> {
        Box::new(FlowTurbine::micro_hydro())
    }

    /// A 40 mm TEG.
    pub fn teg() -> Box<dyn Transducer> {
        Box::new(Teg::module_40mm())
    }

    /// A PZT cantilever.
    pub fn piezo() -> Box<dyn Transducer> {
        Box::new(VibrationHarvester::piezo_cantilever())
    }

    /// An electromagnetic (inductive) vibration generator.
    pub fn electromagnetic() -> Box<dyn Transducer> {
        Box::new(VibrationHarvester::electromagnetic())
    }

    /// A 915 MHz rectenna.
    pub fn rectenna() -> Box<dyn Transducer> {
        Box::new(Rectenna::rectenna_915mhz())
    }

    /// A 12 V external AC/DC input (System G).
    pub fn acdc() -> Box<dyn Transducer> {
        Box::new(AcDcInput::bench_supply_12v())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_end_honours_quiescent_budget() {
        let c = front_end(
            "test",
            Volts::new(4.1),
            Watts::from_micro(2.5),
            Watts::from_milli(100.0),
        );
        assert_eq!(c.quiescent(), Watts::from_micro(2.5));
        assert_eq!(c.output_voltage(), Volts::new(4.1));
        assert!(c.accepts_input_voltage(Volts::new(12.0)));
    }

    #[test]
    fn tracking_variants_build() {
        for t in [
            Tracking::PerturbObserve,
            Tracking::FractionalVocPv,
            Tracking::FractionalVocThevenin,
            Tracking::Fixed(Volts::new(2.0)),
        ] {
            let ch = channel(
                harvesters::pv_small(),
                t,
                Protection::Schottky,
                front_end(
                    "fe",
                    Volts::new(5.0),
                    Watts::from_micro(1.0),
                    Watts::from_milli(100.0),
                ),
            );
            assert!(ch.idle_overhead().value() >= 0.0);
        }
    }

    #[test]
    fn protection_quiescent_differs() {
        let passive = channel(
            harvesters::pv_small(),
            Tracking::FractionalVocPv,
            Protection::Schottky,
            front_end(
                "fe",
                Volts::new(5.0),
                Watts::from_micro(1.0),
                Watts::from_milli(100.0),
            ),
        );
        let active = channel(
            harvesters::pv_small(),
            Tracking::FractionalVocPv,
            Protection::IdealDiode,
            front_end(
                "fe",
                Volts::new(5.0),
                Watts::from_micro(1.0),
                Watts::from_milli(100.0),
            ),
        );
        assert!(active.idle_overhead() > passive.idle_overhead());
    }

    #[test]
    fn harvester_shorthands_cover_all_kinds() {
        use mseh_harvesters::HarvesterKind;
        let kinds: Vec<HarvesterKind> = [
            harvesters::pv_large(),
            harvesters::wind(),
            harvesters::hydro(),
            harvesters::teg(),
            harvesters::piezo(),
            harvesters::electromagnetic(),
            harvesters::rectenna(),
            harvesters::acdc(),
        ]
        .iter()
        .map(|h| h.kind())
        .collect();
        assert_eq!(kinds.len(), 8);
    }
}
