//! System G — MicroStrain EH-Link (2011).
//!
//! A commercial energy-harvesting wireless sensor node: the radio node
//! *is* the power unit (inflexible topology), fed from piezo, inductive,
//! radio or any external AC/DC source above 5 V, buffering into an
//! auxiliary supercap/thin-film store. No monitoring, no interface, no
//! intelligence. Quiescent: <32 µA.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{PortRequirement, PowerUnit, StoreRole, Supervisor};
use mseh_harvesters::HarvesterKind;
use mseh_node::MonitoringLevel;
use mseh_storage::{Battery, StorageKind};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "Microstrain EH-Link";

/// Builds the EH-Link with piezo, inductive and AC/DC inputs.
pub fn build() -> PowerUnit {
    let bus = Volts::new(4.1);
    let fe = |label: &str| {
        parts::front_end(
            label,
            bus,
            Watts::from_micro(10.0),
            Watts::from_milli(300.0),
        )
    };
    let piezo = parts::channel(
        harvesters::piezo(),
        Tracking::Fixed(Volts::new(2.0)),
        Protection::Schottky,
        fe("piezo input"),
    );
    let inductive = parts::channel(
        harvesters::electromagnetic(),
        Tracking::Fixed(Volts::new(0.5)),
        Protection::Schottky,
        fe("inductive input"),
    );
    let acdc = parts::channel(
        harvesters::acdc(),
        Tracking::Fixed(Volts::new(6.0)),
        Protection::Schottky,
        fe("AC/DC input"),
    );

    let mut cell = Battery::thin_film_50uah();
    cell.set_soc(0.5);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "piezo",
                Volts::ZERO,
                Volts::new(20.0),
                vec![HarvesterKind::Piezoelectric],
            ),
            Some(piezo),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "inductive",
                Volts::ZERO,
                Volts::new(20.0),
                vec![HarvesterKind::Electromagnetic],
            ),
            Some(inductive),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "radio / AC-DC (>5 V)",
                Volts::new(5.0),
                Volts::new(20.0),
                vec![HarvesterKind::RfRectenna, HarvesterKind::ExternalAcDc],
            ),
            Some(acdc),
            true,
        )
        .store_port(
            PortRequirement::storage_port(
                "aux store",
                Volts::ZERO,
                Volts::new(5.5),
                vec![StorageKind::Supercapacitor, StorageKind::ThinFilm],
            ),
            Some(Box::new(cell)),
            StoreRole::PrimaryBuffer,
            true, // "Swappable Storage: Yes"
        )
        .supervisor(Supervisor {
            location: mseh_core::IntelligenceLocation::None,
            monitoring: MonitoringLevel::None,
            interface: mseh_core::InterfaceKind::None,
            // The integrated radio-node electronics keep a standing draw.
            overhead: Watts::from_micro(32.5),
        })
        .node_on_power_unit(true)
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.3),
            Watts::from_micro(20.0),
        )))
        .commercial(true)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;
    use mseh_env::EnvConditions;
    use mseh_units::Seconds;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "3/1");
        assert!(!r.swappable_sensor_node); // "No" — node on power unit
        assert_eq!(r.swappable_storage, 1); // "Yes"
        assert_eq!(r.swappable_harvesters, 3); // "Yes, 3"
        assert_eq!(r.energy_monitoring, MonitoringLevel::None); // "No"
        assert!(!r.digital_interface);
        assert!(r.commercial); // "Yes"
                               // Quiescent: <32 µA.
        assert!(r.quiescent.as_micro() < 32.0, "quiescent {}", r.quiescent);
        assert!(r.quiescent.as_micro() > 10.0);
        // Harvesters: Piezo, Inductive, Radio, General AC/DC.
        let cell = r.harvesters_cell();
        for needle in ["Piezo", "Inductive", "Radio", "General AC/DC"] {
            assert!(cell.contains(needle), "{cell}");
        }
        // Storage: aux supercap/thin-film.
        let cell = r.storage_cell();
        assert!(cell.contains("Supercap"), "{cell}");
        assert!(cell.contains("Thin-film"), "{cell}");
    }

    #[test]
    fn bench_supply_powers_the_node() {
        // The AC/DC input is a commissioning feature: with the bench
        // supply present the node runs regardless of ambient energy.
        let mut unit = build();
        let env = EnvConditions::quiescent(Seconds::ZERO);
        let mut served = false;
        for _ in 0..30 {
            let r = unit.step(&env, Seconds::new(60.0), Watts::from_milli(5.0));
            if r.fully_served() {
                served = true;
            }
        }
        assert!(served, "AC/DC input never carried the load");
    }

    #[test]
    fn acdc_port_rejects_low_voltage_sources() {
        // "General AC/DC > 5 V": the port floor refuses a 3 V source.
        let mut unit = build();
        unit.detach_harvester(2);
        let rf = parts::channel(
            harvesters::rectenna(),
            Tracking::Fixed(Volts::new(1.0)),
            Protection::Schottky,
            parts::front_end(
                "rf",
                Volts::new(4.1),
                Watts::from_micro(10.0),
                Watts::from_milli(10.0),
            ),
        );
        assert!(unit.attach_harvester(2, rf, Volts::new(3.0), None).is_err());
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!(micro > 10.0 && micro < 32.0, "quiescent {micro} uA");
    }
}
