//! System D — MPWiNode (Morais et al., 2008).
//!
//! Agricultural data-acquisition platform: sun, wind and water flow
//! charging a 2×AA NiMH pack. The sensor node is integrated on the power
//! unit (inflexible topology), monitoring is limited to an analog
//! store-voltage line, and the charging electronics are power-hungry:
//! 75 µA quiescent — by far the thirstiest platform in Table I.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{
    IntelligenceLocation, InterfaceKind, PortRequirement, PowerUnit, StoreRole, Supervisor,
};
use mseh_harvesters::HarvesterKind;
use mseh_node::MonitoringLevel;
use mseh_storage::{Battery, StorageKind};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "MPWiNode";

/// Builds MPWiNode with its sun + wind + water loadout.
pub fn build() -> PowerUnit {
    let bus = Volts::new(3.2);
    let fe = |label: &str| {
        parts::front_end(
            label,
            bus,
            Watts::from_micro(15.0),
            Watts::from_milli(400.0),
        )
    };
    let pv = parts::channel(
        harvesters::pv_small(),
        Tracking::FractionalVocPv,
        Protection::Schottky,
        fe("PV charger"),
    );
    let wind = parts::channel(
        harvesters::wind(),
        Tracking::FractionalVocThevenin,
        Protection::Schottky,
        fe("wind charger"),
    );
    let hydro = parts::channel(
        harvesters::hydro(),
        Tracking::FractionalVocThevenin,
        Protection::Schottky,
        fe("water-flow charger"),
    );

    let mut pack = Battery::nimh_aa_pair();
    pack.set_soc(0.6);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "solar",
                Volts::ZERO,
                Volts::new(8.0),
                vec![HarvesterKind::Photovoltaic],
            ),
            Some(pv),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "wind",
                Volts::ZERO,
                Volts::new(12.0),
                vec![HarvesterKind::WindTurbine],
            ),
            Some(wind),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "water",
                Volts::ZERO,
                Volts::new(15.0),
                vec![HarvesterKind::Hydro],
            ),
            Some(hydro),
            true,
        )
        .store_port(
            PortRequirement::storage_port(
                "AA pack",
                Volts::ZERO,
                Volts::new(3.0),
                vec![StorageKind::NiMh],
            ),
            Some(Box::new(pack)),
            StoreRole::PrimaryBuffer,
            true,
        )
        .supervisor(Supervisor {
            location: IntelligenceLocation::None,
            monitoring: MonitoringLevel::StoreVoltage, // "Limited"
            interface: InterfaceKind::Analog,
            // The always-on charging electronics dominate the budget.
            overhead: Watts::from_micro(150.0),
        })
        .sense_adc(mseh_core::AdcModel::coarse_4bit())
        .node_on_power_unit(true)
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.0),
            Watts::from_micro(30.0),
        )))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;
    use mseh_env::Environment;
    use mseh_units::Seconds;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "3/1");
        assert!(!r.swappable_sensor_node); // "No" — node on power unit
        assert_eq!(r.swappable_storage, 1); // "Yes, battery"
        assert_eq!(r.swappable_harvesters, 3); // "Yes"
        assert_eq!(r.energy_monitoring, MonitoringLevel::StoreVoltage); // "Limited"
        assert!(!r.digital_interface);
        assert!(!r.commercial);
        // Quiescent: 75 µA.
        assert!(
            (r.quiescent.as_micro() - 75.0).abs() < 5.0,
            "quiescent {}",
            r.quiescent
        );
        let cell = r.harvesters_cell();
        for needle in ["Light", "Wind", "Water Flow"] {
            assert!(cell.contains(needle), "{cell}");
        }
        assert!(r.storage_cell().contains("NiMH"));
    }

    #[test]
    fn analog_sense_line_quantizes_the_store_voltage() {
        // MPWiNode's "Limited" monitoring reads through a coarse ADC: the
        // reported store voltage is a quantized version of the terminal
        // voltage, never above it.
        let unit = build();
        let reported = unit
            .energy_status()
            .store_voltage
            .expect("limited monitoring reports voltage");
        let actual = unit.store_voltage();
        assert!(reported <= actual);
        assert!((actual - reported).value() < 0.21); // one 4-bit LSB
    }

    #[test]
    fn water_flow_charges_during_irrigation_windows() {
        let mut unit = build();
        let env = Environment::agricultural(7);
        // 06:00–07:00 sits inside the morning irrigation window and has
        // early sun; verify the platform harvests.
        let mut harvested = 0.0;
        for minute in 0..60 {
            let t = Seconds::from_hours(6.0) + Seconds::from_minutes(minute as f64);
            harvested += unit
                .step(
                    &env.conditions(t),
                    Seconds::new(60.0),
                    Watts::from_milli(5.0),
                )
                .harvested
                .value();
        }
        assert!(harvested > 1.0, "harvested {harvested} J");
    }

    #[test]
    fn thirstiest_platform_in_the_survey() {
        // MPWiNode's 75 µA dwarfs every other platform — the survey's
        // implicit warning about always-on charger electronics.
        let d = classify(&build()).quiescent.as_micro();
        let a = classify(&crate::system_a::build()).quiescent.as_micro();
        let b = classify(&crate::system_b::build()).quiescent.as_micro();
        assert!(d > 10.0 * a, "D {d} vs A {a}");
        assert!(d > 10.0 * b, "D {d} vs B {b}");
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!((micro - 75.0).abs() < 5.0, "quiescent {micro} uA");
    }
}
