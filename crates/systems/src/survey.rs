//! The site survey: rank harvester technologies for a deployment.
//!
//! The survey's conclusion: MPPT benefit "is deployment-specific, which
//! underlines the importance of considering the deployment environment
//! when choosing energy hardware." This module operationalizes that
//! advice — sample a deployment's conditions over a window, evaluate the
//! stock harvester of every class at its maximum-power point, and rank
//! the classes by expected harvest.

use std::fmt;

use crate::parts::harvesters;
use mseh_env::EnvSampler;
use mseh_harvesters::{HarvesterKind, Transducer};
use mseh_units::{Joules, Seconds, Watts};

/// One technology's expected performance at a site.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyRow {
    /// The harvester class.
    pub kind: HarvesterKind,
    /// The stock device evaluated.
    pub device: String,
    /// Ideal (MPP) energy over the surveyed window.
    pub energy: Joules,
    /// Fraction of samples with meaningful output (> 1 µW).
    pub availability: f64,
}

/// A ranked site survey.
///
/// # Examples
///
/// ```
/// use mseh_systems::site_survey;
/// use mseh_env::Environment;
/// use mseh_units::Seconds;
///
/// let report = site_survey(
///     &Environment::indoor_industrial(7),
///     Seconds::from_days(1.0),
///     Seconds::from_minutes(10.0),
/// );
/// // Indoors, the thermal gradient on the steam pipe is a top source.
/// assert!(report.rows[0].energy.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyReport {
    /// Rows sorted by expected energy, best first.
    pub rows: Vec<SurveyRow>,
    /// Window surveyed.
    pub window: Seconds,
}

impl SurveyReport {
    /// The best-ranked harvester class.
    pub fn best(&self) -> HarvesterKind {
        self.rows[0].kind
    }

    /// The rank (0 = best) of a class, if it was surveyed.
    pub fn rank_of(&self, kind: HarvesterKind) -> Option<usize> {
        self.rows.iter().position(|r| r.kind == kind)
    }
}

impl fmt::Display for SurveyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "site survey over {:.1} days (ideal MPP energy per stock device)",
            self.window.as_days()
        )?;
        writeln!(
            f,
            "{:>4} | {:>14} | {:>12} | {:>12} | device",
            "rank", "class", "energy", "availability"
        )?;
        for (i, r) in self.rows.iter().enumerate() {
            writeln!(
                f,
                "{:>4} | {:>14} | {:>12} | {:>10.0} % | {}",
                i + 1,
                r.kind.to_string(),
                r.energy.to_string(),
                r.availability * 100.0,
                r.device
            )?;
        }
        Ok(())
    }
}

/// Surveys `env` over `window` at `step` resolution with one stock device
/// per harvester class (the external AC/DC input is excluded — it is a
/// commissioning aid, not an ambient source).
///
/// # Panics
///
/// Panics if `step` is not positive or exceeds `window`.
pub fn site_survey(env: &dyn EnvSampler, window: Seconds, step: Seconds) -> SurveyReport {
    assert!(step.value() > 0.0, "step must be positive");
    assert!(step <= window, "step must fit in the window");
    let devices: Vec<Box<dyn Transducer>> = vec![
        harvesters::pv_small(),
        harvesters::wind(),
        harvesters::teg(),
        harvesters::piezo(),
        harvesters::electromagnetic(),
        harvesters::rectenna(),
        harvesters::hydro(),
    ];
    let steps = (window.value() / step.value()).ceil() as usize;
    let mut rows: Vec<SurveyRow> = devices
        .into_iter()
        .map(|device| {
            let mut energy = Joules::ZERO;
            let mut live = 0usize;
            for i in 0..steps {
                let t = Seconds::new(i as f64 * step.value());
                let conditions = env.conditions(t);
                let p = device.mpp(&conditions).power();
                energy += p * step;
                if p > Watts::from_micro(1.0) {
                    live += 1;
                }
            }
            SurveyRow {
                kind: device.kind(),
                device: device.name().to_owned(),
                energy,
                availability: live as f64 / steps as f64,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.energy.total_cmp(&a.energy));
    SurveyReport { rows, window }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_env::Environment;

    fn survey(env: &Environment) -> SurveyReport {
        site_survey(env, Seconds::from_days(1.0), Seconds::from_minutes(10.0))
    }

    #[test]
    fn outdoor_site_favours_sun_and_wind() {
        let report = survey(&Environment::outdoor_temperate(9));
        let pv = report
            .rank_of(HarvesterKind::Photovoltaic)
            .expect("surveyed");
        let wind = report
            .rank_of(HarvesterKind::WindTurbine)
            .expect("surveyed");
        let piezo = report
            .rank_of(HarvesterKind::Piezoelectric)
            .expect("surveyed");
        assert!(pv < piezo, "{report}");
        assert!(wind < piezo, "{report}");
        assert!(pv <= 1, "{report}");
    }

    #[test]
    fn industrial_site_favours_the_steam_pipe_and_the_motor() {
        let report = survey(&Environment::indoor_industrial(9));
        let teg = report
            .rank_of(HarvesterKind::Thermoelectric)
            .expect("surveyed");
        let wind = report
            .rank_of(HarvesterKind::WindTurbine)
            .expect("surveyed");
        let hydro = report.rank_of(HarvesterKind::Hydro).expect("surveyed");
        assert_eq!(report.rows[wind].energy, Joules::ZERO);
        assert_eq!(report.rows[hydro].energy, Joules::ZERO);
        assert!(teg <= 2, "{report}");
    }

    #[test]
    fn agricultural_site_surfaces_water_flow() {
        let report = survey(&Environment::agricultural(9));
        let hydro = report.rank_of(HarvesterKind::Hydro).expect("surveyed");
        let row = &report.rows[hydro];
        assert!(row.energy.value() > 0.0, "{report}");
        // Irrigation windows cover ~5 h of 24 → availability ~20 %.
        assert!((0.05..0.5).contains(&row.availability), "{report}");
    }

    #[test]
    fn report_renders_ranked() {
        let report = survey(&Environment::outdoor_temperate(2));
        let shown = report.to_string();
        assert!(shown.contains("rank"));
        assert!(shown.contains("availability"));
        // Rows are energy-descending.
        for pair in report.rows.windows(2) {
            assert!(pair[0].energy >= pair[1].energy);
        }
        assert_eq!(report.rank_of(report.best()), Some(0));
    }

    #[test]
    #[should_panic(expected = "step must fit")]
    fn rejects_oversized_step() {
        site_survey(
            &Environment::outdoor_temperate(1),
            Seconds::from_minutes(5.0),
            Seconds::from_hours(1.0),
        );
    }
}
