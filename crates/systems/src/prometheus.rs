//! Prometheus — the survey's historical counter-example.
//!
//! "In contrast with early single-source systems like Prometheus \[2\],
//! which are designed for fixed energy devices, some reported systems
//! provide the facility to connect a range of different energy devices."
//! This module models that baseline: a single soldered PV input, a fixed
//! supercap + NiMH chain, no monitoring, no interface — the design point
//! every multi-source architecture in Table I improves on. It is not a
//! Table-I column, but it anchors the exchangeability axis at `Fixed`
//! and gives the experiments a pre-multi-source baseline.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{PortRequirement, PowerUnit, StoreRole, Supervisor};
use mseh_harvesters::HarvesterKind;
use mseh_storage::{Battery, Supercap};
use mseh_units::{Volts, Watts};

/// The platform's display name.
pub const NAME: &str = "Prometheus (single-source baseline)";

/// Builds the Prometheus-style baseline.
pub fn build() -> PowerUnit {
    let pv = parts::channel(
        harvesters::pv_small(),
        // Prometheus predates MPPT front-ends: direct fixed-point charge.
        Tracking::Fixed(Volts::new(3.3)),
        Protection::Schottky,
        parts::front_end(
            "PV charger",
            Volts::new(4.0),
            Watts::from_micro(2.0),
            Watts::from_milli(300.0),
        ),
    );
    let mut cap = Supercap::edlc_22f();
    cap.set_voltage(Volts::new(1.8));
    let mut nimh = Battery::nimh_aa_pair();
    nimh.set_soc(0.6);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "PV (soldered)",
                Volts::ZERO,
                Volts::new(7.0),
                vec![HarvesterKind::Photovoltaic],
            ),
            Some(pv),
            false,
        )
        .store_port(
            PortRequirement::any_in_window("supercap (soldered)", Volts::ZERO, Volts::new(3.0)),
            Some(Box::new(cap)),
            StoreRole::PrimaryBuffer,
            false,
        )
        .store_port(
            PortRequirement::any_in_window("NiMH (soldered)", Volts::ZERO, Volts::new(3.0)),
            Some(Box::new(nimh)),
            StoreRole::SecondaryBuffer,
            false,
        )
        .supervisor(Supervisor::none())
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.0),
            Watts::from_micro(6.0),
        )))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::{classify, Exchangeability};
    use mseh_env::Environment;
    use mseh_node::{FixedDuty, SensorNode};
    use mseh_sim::{run_simulation, SimConfig};
    use mseh_units::{DutyCycle, Seconds};

    #[test]
    fn anchors_the_fixed_end_of_the_exchangeability_axis() {
        let r = classify(&build());
        assert_eq!(r.exchangeability(), Exchangeability::Fixed);
        assert_eq!(r.n_harvesters, 1);
        assert_eq!(r.swappable_harvesters, 0);
        assert_eq!(r.swappable_storage, 0);
        assert!(!r.digital_interface);
        assert_eq!(r.energy_monitoring, mseh_node::MonitoringLevel::None);
    }

    #[test]
    fn single_source_baseline_underperforms_system_a() {
        // The comparison the survey's whole argument rests on: in the
        // same outdoor fortnight, the multi-source SPU out-harvests the
        // single-source baseline by a wide margin.
        let env = Environment::outdoor_temperate(55);
        let node = SensorNode::milliwatt_class();
        let run = |mut unit: PowerUnit| {
            run_simulation(
                &mut unit,
                &env,
                &node,
                &mut FixedDuty::new(DutyCycle::saturating(0.05)),
                SimConfig::over(Seconds::from_days(3.0)),
            )
        };
        let baseline = run(build());
        let spu = run(crate::system_a::build());
        assert!(
            spu.harvested.value() > 3.0 * baseline.harvested.value(),
            "SPU {} vs Prometheus {}",
            spu.harvested,
            baseline.harvested
        );
    }

    #[test]
    fn field_swaps_are_impossible() {
        let mut unit = build();
        unit.detach_harvester(0);
        let replacement = parts::channel(
            harvesters::pv_small(),
            Tracking::Fixed(Volts::new(3.3)),
            Protection::Schottky,
            parts::front_end(
                "x",
                Volts::new(4.0),
                Watts::from_micro(2.0),
                Watts::from_milli(100.0),
            ),
        );
        assert!(unit
            .attach_harvester(0, replacement, Volts::new(6.0), None)
            .is_err());
    }
}
