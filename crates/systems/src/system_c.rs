//! System C — AmbiMax (Park & Chou, SECON 2006).
//!
//! Autonomous multi-supply platform: per-source supercapacitor reservoirs
//! with autonomous (analog) MPPT, light + wind inputs, a Li-poly battery
//! behind the caps. No energy monitoring, no digital interface, no
//! on-board intelligence. Quiescent: <5 µA.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{PortRequirement, PowerUnit, StoreRole, Supervisor};
use mseh_harvesters::HarvesterKind;
use mseh_storage::{Battery, StorageKind, Supercap};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "AmbiMax";

/// Builds AmbiMax with its PV + wind loadout.
pub fn build() -> PowerUnit {
    let bus = Volts::new(5.0);
    let fe = |label: &str| {
        parts::front_end(label, bus, Watts::from_micro(2.5), Watts::from_milli(400.0))
    };
    let pv = parts::channel(
        harvesters::pv_small(),
        Tracking::FractionalVocPv,
        Protection::Schottky,
        fe("PV MPPT"),
    );
    let wind = parts::channel(
        harvesters::wind(),
        Tracking::FractionalVocThevenin,
        Protection::Schottky,
        fe("wind MPPT"),
    );

    let mut supercap = Supercap::edlc_22f();
    supercap.set_voltage(Volts::new(1.8));
    let mut lipo = Battery::lipo_400mah();
    lipo.set_soc(0.5);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "PV",
                Volts::ZERO,
                Volts::new(8.0),
                vec![HarvesterKind::Photovoltaic],
            ),
            Some(pv),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "wind",
                Volts::ZERO,
                Volts::new(12.0),
                vec![HarvesterKind::WindTurbine],
            ),
            Some(wind),
            true,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "aux",
                Volts::ZERO,
                Volts::new(8.0),
                vec![HarvesterKind::Photovoltaic, HarvesterKind::WindTurbine],
            ),
            None,
            true,
        )
        .store_port(
            PortRequirement::any_in_window("supercap reservoir", Volts::ZERO, Volts::new(3.0)),
            Some(Box::new(supercap)),
            StoreRole::PrimaryBuffer,
            false,
        )
        .store_port(
            PortRequirement::storage_port(
                "battery",
                Volts::ZERO,
                Volts::new(4.3),
                vec![StorageKind::LiIon, StorageKind::NiMh],
            ),
            Some(Box::new(lipo)),
            StoreRole::SecondaryBuffer,
            true,
        )
        .supervisor(Supervisor::none())
        .output_stage(Box::new(parts::output_buck_boost(
            Volts::new(3.3),
            Watts::from_micro(5.0),
        )))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;
    use mseh_node::MonitoringLevel;
    use mseh_storage::Storage;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "3/2");
        assert!(r.swappable_sensor_node); // "Yes"
        assert_eq!(r.swappable_storage, 1); // "Yes, battery"
        assert_eq!(r.swappable_harvesters, 3); // "Yes, 3"
        assert_eq!(r.energy_monitoring, MonitoringLevel::None); // "No"
        assert!(!r.digital_interface); // "No"
        assert!(!r.commercial);
        // Quiescent: <5 µA.
        assert!(r.quiescent.as_micro() < 5.0, "quiescent {}", r.quiescent);
        assert!(r.quiescent.as_micro() > 1.0);
        assert_eq!(r.harvesters_cell(), "Light, Wind");
        let cell = r.storage_cell();
        assert!(cell.contains("Supercap"), "{cell}");
        assert!(cell.contains("Li-ion"), "{cell}");
        assert!(cell.contains("NiMH"), "{cell}");
        assert_eq!(r.intelligence, mseh_core::IntelligenceLocation::None);
    }

    #[test]
    fn battery_swap_leaves_unit_unaware() {
        // "the software will not automatically be able to recognise any
        // change in capacity" — AmbiMax has no datasheet mechanism.
        let mut unit = build();
        let commissioned = unit.store_ports()[1].recognized_capacity();
        unit.detach_storage(1);
        let mut bigger = Battery::nimh_aa_pair();
        bigger.set_soc(0.5);
        let real = bigger.capacity();
        unit.attach_storage(1, Box::new(bigger), None)
            .expect("chemistry allowed");
        assert_eq!(unit.store_ports()[1].recognized_capacity(), commissioned);
        assert_ne!(real, commissioned);
    }

    #[test]
    fn aux_port_refuses_foreign_kinds() {
        let mut unit = build();
        let teg = parts::channel(
            harvesters::teg(),
            Tracking::FractionalVocThevenin,
            Protection::Schottky,
            parts::front_end(
                "x",
                Volts::new(5.0),
                Watts::from_micro(1.0),
                Watts::from_milli(50.0),
            ),
        );
        assert!(unit
            .attach_harvester(2, teg, Volts::new(1.0), None)
            .is_err());
        let pv = parts::channel(
            harvesters::pv_small(),
            Tracking::FractionalVocPv,
            Protection::Schottky,
            parts::front_end(
                "y",
                Volts::new(5.0),
                Watts::from_micro(1.0),
                Watts::from_milli(50.0),
            ),
        );
        assert!(unit.attach_harvester(2, pv, Volts::new(6.0), None).is_ok());
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!(micro > 1.0 && micro < 5.0, "quiescent {micro} uA");
    }
}
