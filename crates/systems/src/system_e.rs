//! System E — Maxim MAX17710 Evaluation Kit (2011).
//!
//! A commercial nano-power harvesting manager: one fixed light input plus
//! one selectable input (piezo/mechanical or radio), charging a soldered
//! thin-film cell. No monitoring, no interface, no intelligence — but a
//! class-leading sub-µA quiescent draw.

use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{PortRequirement, PowerUnit, StoreRole, Supervisor};
use mseh_harvesters::HarvesterKind;
use mseh_storage::Battery;
use mseh_units::{Amps, Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "Maxim MAX17710 Eval";

/// Builds the MAX17710 evaluation kit.
pub fn build() -> PowerUnit {
    let bus = Volts::new(4.1);
    let fe = |label: &str| {
        parts::front_end(label, bus, Watts::from_micro(0.2), Watts::from_milli(100.0))
    };
    let light = parts::channel(
        harvesters::pv_indoor(),
        Tracking::Fixed(Volts::new(3.0)),
        Protection::Schottky,
        fe("light input"),
    );
    let piezo = parts::channel(
        harvesters::piezo(),
        Tracking::Fixed(Volts::new(2.0)),
        Protection::Schottky,
        fe("piezo/radio input"),
    );

    let mut cell = Battery::thin_film_50uah();
    cell.set_soc(0.5);

    PowerUnit::builder(NAME)
        .harvester_port(
            PortRequirement::harvester_port(
                "light (fixed)",
                Volts::ZERO,
                Volts::new(5.0),
                vec![HarvesterKind::Photovoltaic],
            ),
            Some(light),
            false,
        )
        .harvester_port(
            PortRequirement::harvester_port(
                "AC input (piezo/mech or radio)",
                Volts::ZERO,
                Volts::new(12.0),
                vec![
                    HarvesterKind::Piezoelectric,
                    HarvesterKind::Electromagnetic,
                    HarvesterKind::RfRectenna,
                ],
            ),
            Some(piezo),
            true, // "Yes, 1 of 2"
        )
        .store_port(
            PortRequirement::any_in_window("thin-film cell", Volts::ZERO, Volts::new(4.2)),
            Some(Box::new(cell)),
            StoreRole::PrimaryBuffer,
            false, // soldered
        )
        .supervisor(Supervisor::none())
        .output_stage(Box::new(parts::output_ldo(
            Volts::new(3.3),
            Amps::from_nano(625.0),
        )))
        .commercial(true)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::classify;
    use mseh_node::MonitoringLevel;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "2/1");
        assert!(r.swappable_sensor_node); // "Yes"
        assert_eq!(r.swappable_storage, 0); // "No"
        assert_eq!(r.swappable_harvesters, 1); // "Yes, 1 of 2"
        assert_eq!(r.energy_monitoring, MonitoringLevel::None); // "No"
        assert!(!r.digital_interface);
        assert!(r.commercial); // "Yes"
                               // Quiescent: <1 µA — the headline feature.
        assert!(r.quiescent.as_micro() < 1.0, "quiescent {}", r.quiescent);
        // Harvesters: Piezo/Mech, Light, Radio.
        let cell = r.harvesters_cell();
        for needle in ["Light", "Piezo", "Radio"] {
            assert!(cell.contains(needle), "{cell}");
        }
        assert!(r.storage_cell().contains("Thin-film"));
    }

    #[test]
    fn lowest_quiescent_in_the_survey() {
        let e = classify(&build()).quiescent.as_micro();
        for other in [
            classify(&crate::system_a::build()).quiescent.as_micro(),
            classify(&crate::system_b::build()).quiescent.as_micro(),
            classify(&crate::system_c::build()).quiescent.as_micro(),
            classify(&crate::system_d::build()).quiescent.as_micro(),
        ] {
            assert!(e < other, "E {e} vs {other}");
        }
    }

    #[test]
    fn swappable_input_accepts_rectenna_but_not_wind() {
        let mut unit = build();
        unit.detach_harvester(1);
        let wind = parts::channel(
            harvesters::wind(),
            Tracking::FractionalVocThevenin,
            Protection::Schottky,
            parts::front_end(
                "w",
                Volts::new(4.1),
                Watts::from_micro(0.2),
                Watts::from_milli(80.0),
            ),
        );
        assert!(unit
            .attach_harvester(1, wind, Volts::new(7.0), None)
            .is_err());
        let rf = parts::channel(
            harvesters::rectenna(),
            Tracking::Fixed(Volts::new(1.0)),
            Protection::Schottky,
            parts::front_end(
                "r",
                Volts::new(4.1),
                Watts::from_micro(0.2),
                Watts::from_milli(10.0),
            ),
        );
        assert!(unit.attach_harvester(1, rf, Volts::new(2.0), None).is_ok());
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!(micro < 1.0, "quiescent {micro} uA");
    }
}
