//! System B — the Plug-and-Play Architecture (Weddell et al., SECON 2009;
//! Fig. 2 of the survey).
//!
//! Indoor platform, <1 mW budget. Six *shared* module slots accept any
//! energy device that arrives behind a conforming interface circuit and
//! electronic datasheet; conditioning lives on the modules, the output is
//! a low-quiescent linear regulator, and energy awareness runs on the
//! sensor node's own microcontroller. The default loadout attaches four
//! harvester modules (light, wind, thermal, vibration — Table I's kinds)
//! and two storage modules (supercap, NiMH); a lithium-primary module is
//! also supported and available via [`li_primary_module`]. Quiescent:
//! 7 µA.

use crate::interfaced::InterfacedStorage;
use crate::parts::{self, harvesters, Protection, Tracking};
use mseh_core::{
    ConditioningPlacement, ElectronicDatasheet, IntelligenceLocation, InterfaceKind,
    PortRequirement, PowerUnit, StoreRole, Supervisor,
};
use mseh_harvesters::HarvesterKind;
use mseh_node::MonitoringLevel;
use mseh_power::InputChannel;
use mseh_storage::{Battery, Storage, StorageKind, Supercap};
use mseh_units::{Volts, Watts};

/// The platform's display name (Table I column header).
pub const NAME: &str = "Plug-and-Play";

/// The module-bus voltage every interface circuit presents.
pub const MODULE_BUS: Volts = Volts::new(4.1);

fn module_requirement(label: &str) -> PortRequirement {
    // A shared slot: any device, provided its interface circuit presents
    // the module bus.
    PortRequirement::any_in_window(label, Volts::ZERO, Volts::new(4.2))
}

fn module_front_end(label: &str) -> mseh_power::DcDcConverter {
    parts::front_end(
        label,
        MODULE_BUS,
        Watts::from_micro(3.5),
        Watts::from_milli(100.0),
    )
}

/// Builds one of the four standard harvester modules as a channel plus
/// datasheet.
pub fn harvester_module(kind: HarvesterKind) -> (InputChannel, ElectronicDatasheet) {
    let (harvester, tracking, rated_mw) = match kind {
        HarvesterKind::Photovoltaic => (
            harvesters::pv_indoor(),
            Tracking::Fixed(Volts::new(3.0)),
            0.5,
        ),
        HarvesterKind::WindTurbine => (harvesters::wind(), Tracking::Fixed(Volts::new(2.4)), 80.0),
        HarvesterKind::Thermoelectric => {
            (harvesters::teg(), Tracking::Fixed(Volts::new(0.25)), 25.0)
        }
        HarvesterKind::Piezoelectric => {
            (harvesters::piezo(), Tracking::Fixed(Volts::new(2.0)), 0.25)
        }
        other => panic!("no standard Plug-and-Play module for {other}"),
    };
    let channel = parts::channel(
        harvester,
        tracking,
        Protection::Schottky,
        module_front_end(&format!("{kind} module interface")),
    );
    let sheet =
        ElectronicDatasheet::harvester(format!("PNP-{kind}"), kind, Watts::from_milli(rated_mw));
    (channel, sheet)
}

/// The supercap storage module (pre-charged to mid-window).
pub fn supercap_module() -> (InterfacedStorage, ElectronicDatasheet) {
    let mut cap = Supercap::edlc_22f();
    cap.set_voltage(Volts::new(2.0));
    let capacity = cap.capacity();
    let module = InterfacedStorage::module_4v1(Box::new(cap));
    let sheet = ElectronicDatasheet::storage(
        "PNP-SC22",
        StorageKind::Supercapacitor,
        Watts::from_milli(500.0),
        capacity,
    );
    (module, sheet)
}

/// The NiMH storage module (half charged).
pub fn nimh_module() -> (InterfacedStorage, ElectronicDatasheet) {
    let mut pack = Battery::nimh_aa_pair();
    pack.set_soc(0.5);
    let capacity = pack.capacity();
    let module = InterfacedStorage::module_4v1(Box::new(pack));
    let sheet = ElectronicDatasheet::storage(
        "PNP-NIMH2",
        StorageKind::NiMh,
        Watts::from_milli(300.0),
        capacity,
    );
    (module, sheet)
}

/// The lithium-primary backup module (supported; not in the default
/// loadout — the demo board has six slots).
pub fn li_primary_module() -> (InterfacedStorage, ElectronicDatasheet) {
    let cell = Battery::li_primary_aa();
    let capacity = cell.capacity();
    let module = InterfacedStorage::module_4v1(Box::new(cell));
    let sheet = ElectronicDatasheet::storage(
        "PNP-LIP",
        StorageKind::LiPrimary,
        Watts::from_milli(200.0),
        capacity,
    );
    (module, sheet)
}

/// Builds the Plug-and-Play architecture with its default six-module
/// loadout.
pub fn build() -> PowerUnit {
    let mut builder = PowerUnit::builder(NAME)
        .conditioning(ConditioningPlacement::EnergyModules)
        .datasheet_capable(true)
        .shared_ports(6)
        .supervisor(Supervisor {
            location: IntelligenceLocation::EmbeddedDevice,
            monitoring: MonitoringLevel::Full,
            // Table I: no *dedicated* digital management interface — the
            // node reads module datasheets directly over its own lines.
            interface: InterfaceKind::Analog,
            overhead: Watts::from_micro(4.0),
        })
        .output_stage(Box::new(parts::output_ldo(
            Volts::new(3.0),
            mseh_units::Amps::from_micro(1.0),
        )));

    for kind in [
        HarvesterKind::Photovoltaic,
        HarvesterKind::WindTurbine,
        HarvesterKind::Thermoelectric,
        HarvesterKind::Piezoelectric,
    ] {
        let (channel, _sheet) = harvester_module(kind);
        builder = builder.harvester_port(
            module_requirement(&format!("slot ({kind})")),
            Some(channel),
            true,
        );
    }
    let (sc, _) = supercap_module();
    let (nimh, _) = nimh_module();
    builder
        .store_port(
            module_requirement("slot (storage 1)"),
            Some(Box::new(sc)),
            StoreRole::PrimaryBuffer,
            true,
        )
        .store_port(
            module_requirement("slot (storage 2)"),
            Some(Box::new(nimh)),
            StoreRole::SecondaryBuffer,
            true,
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::{classify, CompatError};
    use mseh_env::Environment;
    use mseh_units::Seconds;

    #[test]
    fn table_row_matches_paper() {
        let r = classify(&build());
        assert_eq!(r.name, NAME);
        assert_eq!(r.counts_cell(), "6 (shared)");
        assert!(r.swappable_sensor_node);
        assert_eq!(r.swappable_storage, 2); // every slot swappable
        assert_eq!(r.swappable_harvesters, 4);
        assert_eq!(r.swappable_storage + r.swappable_harvesters, 6); // "Yes, 6"
        assert_eq!(r.energy_monitoring, MonitoringLevel::Full); // "Yes"
        assert!(!r.digital_interface); // Table I: "No"
        assert!(!r.commercial);
        assert!(
            (r.quiescent.as_micro() - 7.0).abs() < 0.5,
            "quiescent {}",
            r.quiescent
        );
        // Harvesters: Light, Wind, Thermal, Vibration (piezo).
        let cell = r.harvesters_cell();
        for needle in ["Light", "Wind", "Thermal", "Piezo"] {
            assert!(cell.contains(needle), "{cell}");
        }
        // Storage: supercap + NiMH attached (Li primary also supported).
        let cell = r.storage_cell();
        assert!(cell.contains("Supercap"), "{cell}");
        assert!(cell.contains("NiMH"), "{cell}");
        assert_eq!(r.intelligence, IntelligenceLocation::EmbeddedDevice);
        assert_eq!(r.conditioning, ConditioningPlacement::EnergyModules);
        assert_eq!(
            r.exchangeability(),
            mseh_core::Exchangeability::CompletelyFlexible
        );
    }

    #[test]
    fn sub_milliwatt_operation_indoors() {
        let mut unit = build();
        let env = Environment::indoor_industrial(5);
        let mut total_harvest = 0.0;
        for minute in 0..(8 * 60) {
            let t = Seconds::from_hours(8.0) + Seconds::from_minutes(minute as f64);
            let r = unit.step(
                &env.conditions(t),
                Seconds::new(60.0),
                Watts::from_micro(300.0),
            );
            total_harvest += r.harvested.value();
        }
        let avg_mw = total_harvest / (8.0 * 3600.0) * 1e3;
        // "its power budget is <1 mW" — the indoor harvest is sub-mW but
        // sustains the 300 µW load.
        assert!(avg_mw < 5.0, "harvest {avg_mw} mW");
        assert!(avg_mw > 0.05, "harvest {avg_mw} mW");
    }

    #[test]
    fn swap_requires_interface_circuit_but_accepts_any_kind() {
        let mut unit = build();
        unit.detach_storage(1);
        // Without a datasheet the module is refused — the interface
        // circuit is mandatory.
        let (module, _sheet) = li_primary_module();
        assert_eq!(
            unit.attach_storage(1, Box::new(module), None).unwrap_err(),
            CompatError::MissingInterfaceCircuit
        );
        // With its datasheet the lithium-primary module (a completely
        // different chemistry) attaches, and the unit's recognized
        // capacity follows it — energy-awareness survives the swap.
        let (module, sheet) = li_primary_module();
        let expected = module.capacity();
        unit.attach_storage(1, Box::new(module), Some(&sheet))
            .expect("interface circuit present");
        assert_eq!(unit.store_ports()[1].recognized_capacity(), expected);
    }

    #[test]
    fn all_six_slots_are_swappable() {
        let unit = build();
        assert!(unit.harvester_ports().iter().all(|p| p.is_swappable()));
        assert!(unit.store_ports().iter().all(|p| p.is_swappable()));
    }

    #[test]
    #[should_panic(expected = "no standard Plug-and-Play module")]
    fn exotic_kinds_have_no_standard_module() {
        harvester_module(HarvesterKind::Hydro);
    }
}

#[cfg(test)]
mod ledger_tests {
    use super::*;

    #[test]
    fn quiescent_ledger_itemizes_the_idle_budget() {
        let unit = build();
        let ledger = unit.quiescent_ledger();
        // The itemization adds up to the platform's standing draw...
        let total = ledger.total_power();
        assert!(
            (total - unit.quiescent_power()).value().abs() <= 1e-15,
            "ledger total {total:?} vs quiescent {:?}",
            unit.quiescent_power()
        );
        // ...with one entry per occupied front-end plus the supervisor
        // and the output stage.
        let occupied = unit
            .harvester_ports()
            .iter()
            .filter(|p| p.channel().is_some())
            .count();
        assert_eq!(ledger.iter().count(), occupied + 2);
        assert_eq!(ledger.rail(), unit.output_rail());
        // Referenced to the output rail, the total reproduces Table I's
        // quiescent-current figure.
        let micro = ledger.total_current().as_micro();
        assert!((micro - 7.0).abs() < 0.5, "quiescent {micro} uA");
    }
}
