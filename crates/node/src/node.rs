//! The wireless-sensor-node load model.

use mseh_units::{DutyCycle, Joules, Seconds, Volts, Watts};

/// A duty-cycled wireless sensor node: the embedded device every surveyed
/// platform powers.
///
/// The model is a two-level load: a standing sleep floor plus an active
/// component proportional to the duty cycle. At duty `d`, the node runs
/// `d × max_sample_rate` measure-and-transmit cycles per hour, each
/// costing `cycle_energy`.
///
/// # Examples
///
/// ```
/// use mseh_node::SensorNode;
/// use mseh_units::DutyCycle;
///
/// let node = SensorNode::milliwatt_class();
/// let low = node.average_power(DutyCycle::new(0.01).unwrap());
/// let high = node.average_power(DutyCycle::new(0.5).unwrap());
/// assert!(high.value() > low.value());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorNode {
    name: String,
    /// Standing draw while asleep.
    sleep_power: Watts,
    /// Energy of one sense + transmit cycle.
    cycle_energy: Joules,
    /// Cycles per hour at duty 1.0.
    max_cycles_per_hour: f64,
    /// Supply rail the node requires.
    supply: Volts,
    /// Below this rail the node browns out.
    brownout: Volts,
}

impl SensorNode {
    /// Creates a node model.
    ///
    /// # Panics
    ///
    /// Panics if any power/energy parameter is non-positive or the
    /// brownout threshold is not below the supply rail.
    pub fn new(
        name: impl Into<String>,
        sleep_power: Watts,
        cycle_energy: Joules,
        max_cycles_per_hour: f64,
        supply: Volts,
        brownout: Volts,
    ) -> Self {
        assert!(sleep_power.value() > 0.0, "sleep power must be positive");
        assert!(cycle_energy.value() > 0.0, "cycle energy must be positive");
        assert!(max_cycles_per_hour > 0.0, "cycle rate must be positive");
        assert!(
            brownout.value() > 0.0 && brownout < supply,
            "brownout must be positive and below the supply rail"
        );
        Self {
            name: name.into(),
            sleep_power,
            cycle_energy,
            max_cycles_per_hour,
            supply,
            brownout,
        }
    }

    /// System A's node class: mW-scale. 12 µW sleep, 45 mJ per cycle
    /// (sensor + radio burst), up to 720 cycles/hour (one per 5 s),
    /// 3.3 V rail.
    pub fn milliwatt_class() -> Self {
        Self::new(
            "mW-class sensor node",
            Watts::from_micro(12.0),
            Joules::new(0.045),
            720.0,
            Volts::new(3.3),
            Volts::new(2.8),
        )
    }

    /// System B's node class: sub-mW. 2 µW sleep, 8 mJ per cycle, up to
    /// 360 cycles/hour, 3.0 V rail.
    pub fn submilliwatt_class() -> Self {
        Self::new(
            "sub-mW sensor node",
            Watts::from_micro(2.0),
            Joules::new(0.008),
            360.0,
            Volts::new(3.0),
            Volts::new(2.5),
        )
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The required supply rail.
    pub fn supply_voltage(&self) -> Volts {
        self.supply
    }

    /// The brown-out threshold.
    pub fn brownout_voltage(&self) -> Volts {
        self.brownout
    }

    /// The sleep-floor power.
    pub fn sleep_power(&self) -> Watts {
        self.sleep_power
    }

    /// Average power at duty cycle `d`.
    pub fn average_power(&self, d: DutyCycle) -> Watts {
        let active = self.cycle_energy.value() * self.max_cycles_per_hour * d.value() / 3600.0;
        self.sleep_power + Watts::new(active)
    }

    /// Peak instantaneous power during a cycle burst (for supply sizing):
    /// assumes the cycle energy is spent in a 50 ms burst.
    pub fn burst_power(&self) -> Watts {
        self.cycle_energy / Seconds::from_milli(50.0)
    }

    /// Energy demanded and samples produced over `dt` at duty `d`.
    pub fn step(&self, d: DutyCycle, dt: Seconds) -> NodeDemand {
        NodeDemand {
            energy: self.average_power(d) * dt,
            samples: self.max_cycles_per_hour * d.value() * dt.as_hours(),
        }
    }

    /// The duty cycle whose average power equals `budget` (clamped to
    /// `[0, 1]`); the inverse of [`average_power`](Self::average_power),
    /// used by energy-neutral policies.
    pub fn duty_for_power(&self, budget: Watts) -> DutyCycle {
        let active_budget = budget - self.sleep_power;
        let per_duty = self.cycle_energy.value() * self.max_cycles_per_hour / 3600.0;
        DutyCycle::saturating(active_budget.value() / per_duty)
    }
}

/// The load a node places on the bus over one step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeDemand {
    /// Energy the node wants over the step.
    pub energy: Joules,
    /// Data samples produced if fully powered.
    pub samples: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_power_scales_linearly_with_duty() {
        let n = SensorNode::milliwatt_class();
        let p0 = n.average_power(DutyCycle::ZERO);
        assert_eq!(p0, n.sleep_power());
        let p_half = n.average_power(DutyCycle::new(0.5).unwrap());
        let p_full = n.average_power(DutyCycle::ONE);
        let sleep = n.sleep_power().value();
        assert!(((p_full.value() - sleep) - 2.0 * (p_half.value() - sleep)).abs() < 1e-15);
        // Full duty on the mW node is mW-scale: 45 mJ × 720/h = 9 mW.
        assert!((p_full.as_milli() - 9.012).abs() < 0.01, "{p_full}");
    }

    #[test]
    fn class_power_budgets_match_survey() {
        // System A's budget is "a few milliwatts", System B's "<1 mW".
        let a = SensorNode::milliwatt_class();
        let b = SensorNode::submilliwatt_class();
        let duty = DutyCycle::new(0.25).unwrap();
        assert!((1.0..5.0).contains(&a.average_power(duty).as_milli()));
        assert!(b.average_power(duty).as_milli() < 1.0);
    }

    #[test]
    fn step_integrates_energy_and_samples() {
        let n = SensorNode::submilliwatt_class();
        let d = DutyCycle::new(0.1).unwrap();
        let demand = n.step(d, Seconds::from_hours(2.0));
        assert!((demand.samples - 72.0).abs() < 1e-9);
        let expected = n.average_power(d) * Seconds::from_hours(2.0);
        assert!((demand.energy - expected).abs().value() < 1e-12);
    }

    #[test]
    fn duty_for_power_inverts_average_power() {
        let n = SensorNode::milliwatt_class();
        for d in [0.0, 0.1, 0.45, 0.9, 1.0] {
            let duty = DutyCycle::new(d).unwrap();
            let p = n.average_power(duty);
            let back = n.duty_for_power(p);
            assert!((back.value() - d).abs() < 1e-9, "{d}");
        }
        // Budgets below the sleep floor give zero duty; huge budgets clamp.
        assert_eq!(n.duty_for_power(Watts::from_micro(1.0)), DutyCycle::ZERO);
        assert_eq!(n.duty_for_power(Watts::new(1.0)), DutyCycle::ONE);
    }

    #[test]
    fn burst_power_exceeds_average() {
        let n = SensorNode::milliwatt_class();
        assert!(n.burst_power() > n.average_power(DutyCycle::ONE));
    }

    #[test]
    #[should_panic(expected = "brownout")]
    fn rejects_brownout_above_supply() {
        SensorNode::new(
            "bad",
            Watts::from_micro(1.0),
            Joules::new(0.01),
            100.0,
            Volts::new(3.0),
            Volts::new(3.5),
        );
    }
}
