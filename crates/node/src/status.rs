//! What the embedded device can see of its energy hardware — the survey's
//! "Energy Monitoring/Control Capability" axis made concrete.

use mseh_units::{Joules, Ratio, Seconds, Volts, Watts};

/// The monitoring capability a platform grants its sensor node.
///
/// Table I's "Energy Monitoring" column collapses to these levels: most
/// systems expose nothing, System D exposes only the store voltage
/// ("Limited"), and Systems A/B expose stored energy and incoming power
/// ("Yes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MonitoringLevel {
    /// No energy information reaches the node.
    None,
    /// An analog line carries the store voltage only.
    StoreVoltage,
    /// Full visibility: stored energy, state of charge and incoming power.
    Full,
}

impl MonitoringLevel {
    /// The label Table I uses.
    pub fn table_label(self) -> &'static str {
        match self {
            MonitoringLevel::None => "No",
            MonitoringLevel::StoreVoltage => "Limited",
            MonitoringLevel::Full => "Yes",
        }
    }
}

/// An energy-status report delivered to the node, with fields present
/// according to the platform's [`MonitoringLevel`].
///
/// # Examples
///
/// ```
/// use mseh_node::{EnergyStatus, MonitoringLevel};
/// use mseh_units::{Volts, Ratio, Joules, Watts};
///
/// let full = EnergyStatus::full(
///     Volts::new(2.5),
///     Ratio::new(0.6),
///     Joules::new(40.0),
///     Watts::from_milli(3.0),
/// );
/// assert_eq!(full.level(), MonitoringLevel::Full);
/// assert!(full.harvest_power.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyStatus {
    /// Timestamp of the report (simulation time; stamped by the
    /// simulation kernel — zero when unknown). Time is metadata, not an
    /// energy measurement, so it survives monitoring-level clamping.
    pub time: Seconds,
    /// Store terminal voltage (present at `StoreVoltage` and above).
    pub store_voltage: Option<Volts>,
    /// State of charge (present at `Full`).
    pub soc: Option<Ratio>,
    /// Stored energy (present at `Full`).
    pub stored: Option<Joules>,
    /// Power currently arriving from the harvesters (present at `Full`).
    pub harvest_power: Option<Watts>,
}

impl EnergyStatus {
    /// A blind status (no monitoring).
    pub fn none() -> Self {
        Self::default()
    }

    /// A store-voltage-only status.
    pub fn voltage_only(v: Volts) -> Self {
        Self {
            store_voltage: Some(v),
            ..Self::default()
        }
    }

    /// A full-visibility status.
    pub fn full(v: Volts, soc: Ratio, stored: Joules, harvest: Watts) -> Self {
        Self {
            store_voltage: Some(v),
            soc: Some(soc),
            stored: Some(stored),
            harvest_power: Some(harvest),
            ..Self::default()
        }
    }

    /// The monitoring level this status corresponds to.
    pub fn level(&self) -> MonitoringLevel {
        if self.soc.is_some() && self.harvest_power.is_some() {
            MonitoringLevel::Full
        } else if self.store_voltage.is_some() {
            MonitoringLevel::StoreVoltage
        } else {
            MonitoringLevel::None
        }
    }

    /// Stamps the report's timestamp.
    pub fn at(mut self, time: Seconds) -> Self {
        self.time = time;
        self
    }

    /// Restricts this status to what `level` permits (a platform clamping
    /// its report to its own capability). The timestamp is metadata and
    /// survives.
    pub fn clamped_to(self, level: MonitoringLevel) -> Self {
        match level {
            MonitoringLevel::None => Self {
                time: self.time,
                ..Self::none()
            },
            MonitoringLevel::StoreVoltage => Self {
                time: self.time,
                store_voltage: self.store_voltage,
                ..Self::default()
            },
            MonitoringLevel::Full => self,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_detection() {
        assert_eq!(EnergyStatus::none().level(), MonitoringLevel::None);
        assert_eq!(
            EnergyStatus::voltage_only(Volts::new(2.0)).level(),
            MonitoringLevel::StoreVoltage
        );
        let full = EnergyStatus::full(
            Volts::new(2.0),
            Ratio::new(0.5),
            Joules::new(1.0),
            Watts::ZERO,
        );
        assert_eq!(full.level(), MonitoringLevel::Full);
    }

    #[test]
    fn clamping_removes_fields() {
        let full = EnergyStatus::full(
            Volts::new(2.0),
            Ratio::new(0.5),
            Joules::new(1.0),
            Watts::ZERO,
        );
        let limited = full.clamped_to(MonitoringLevel::StoreVoltage);
        assert_eq!(limited.level(), MonitoringLevel::StoreVoltage);
        assert!(limited.soc.is_none());
        let blind = full.clamped_to(MonitoringLevel::None);
        assert_eq!(blind, EnergyStatus::none());
        // Clamping upward grants nothing new.
        let v = EnergyStatus::voltage_only(Volts::new(2.0));
        assert_eq!(v.clamped_to(MonitoringLevel::Full), v);
    }

    #[test]
    fn table_labels() {
        assert_eq!(MonitoringLevel::None.table_label(), "No");
        assert_eq!(MonitoringLevel::StoreVoltage.table_label(), "Limited");
        assert_eq!(MonitoringLevel::Full.table_label(), "Yes");
    }

    #[test]
    fn levels_are_ordered() {
        assert!(MonitoringLevel::None < MonitoringLevel::StoreVoltage);
        assert!(MonitoringLevel::StoreVoltage < MonitoringLevel::Full);
    }
}
