//! Duty-cycle policies: how a node adapts its activity to its energy
//! status.
//!
//! The survey: "as energy generation rates are highly variable, the
//! requirement for the embedded device to adapt its activity to its energy
//! status is essential." Each policy consumes exactly the information its
//! platform's monitoring level provides, so experiment E7 measures what
//! each Table-I monitoring tier is worth.

use crate::node::SensorNode;
use crate::status::{EnergyStatus, MonitoringLevel};
use mseh_units::{DutyCycle, Volts, Watts};

/// Picks the duty cycle for the next control window.
pub trait DutyCyclePolicy: Send + Sync {
    /// Human-readable policy name.
    fn name(&self) -> &str;

    /// The monitoring level this policy requires to function fully.
    fn required_monitoring(&self) -> MonitoringLevel;

    /// Chooses the duty cycle given the (possibly clamped) energy status.
    fn choose(&mut self, node: &SensorNode, status: &EnergyStatus) -> DutyCycle;

    /// How many times this policy has engaged a failover path (degraded
    /// duty after detecting an energy collapse).
    ///
    /// Plain policies never fail over; recovery wrappers (the
    /// `FailoverPolicy`) override this so the simulation runner can emit
    /// a `FailoverEngaged` event when the count rises.
    fn failover_count(&self) -> u64 {
        0
    }
}

/// A constant duty cycle, whatever the energy situation — all a platform
/// without monitoring supports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedDuty {
    duty: DutyCycle,
}

impl FixedDuty {
    /// Runs at `duty` forever.
    pub fn new(duty: DutyCycle) -> Self {
        Self { duty }
    }
}

impl DutyCyclePolicy for FixedDuty {
    fn name(&self) -> &str {
        "fixed duty cycle"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::None
    }

    fn choose(&mut self, _node: &SensorNode, _status: &EnergyStatus) -> DutyCycle {
        self.duty
    }
}

/// Store-voltage thresholding (System D's capability): full duty above the
/// high-water mark, reduced below it, survival duty near brown-out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageThreshold {
    /// Duty when the store is comfortably charged.
    pub duty_high: DutyCycle,
    /// Duty in the caution band.
    pub duty_mid: DutyCycle,
    /// Duty in the survival band.
    pub duty_low: DutyCycle,
    /// Above this store voltage: `duty_high`.
    pub v_high: Volts,
    /// Above this store voltage (but below `v_high`): `duty_mid`.
    pub v_low: Volts,
}

impl VoltageThreshold {
    /// A standard three-band ladder for a supercap store: 100 % / 25 % /
    /// 2 % duty with bands at 2.2 V and 1.4 V.
    pub fn supercap_ladder() -> Self {
        Self {
            duty_high: DutyCycle::ONE,
            duty_mid: DutyCycle::saturating(0.25),
            duty_low: DutyCycle::saturating(0.02),
            v_high: Volts::new(2.2),
            v_low: Volts::new(1.4),
        }
    }
}

impl DutyCyclePolicy for VoltageThreshold {
    fn name(&self) -> &str {
        "store-voltage threshold ladder"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::StoreVoltage
    }

    fn choose(&mut self, _node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        match status.store_voltage {
            // Blind: behave like the cautious middle band.
            None => self.duty_mid,
            Some(v) if v >= self.v_high => self.duty_high,
            Some(v) if v >= self.v_low => self.duty_mid,
            Some(_) => self.duty_low,
        }
    }
}

/// Energy-neutral operation (Systems A/B capability): spend what the
/// harvesters bring in, biased by the state of charge.
///
/// The power budget is `harvest_power × 2·soc` — equal to the harvest
/// rate at half charge, saving below it and spending the surplus above —
/// with a hard survival reserve: below 25 % state of charge the node
/// drops to sleep, leaving enough margin for the platform's standing
/// draw and the buffer's own leakage to ride out a long night. The
/// budget becomes a duty cycle through the node's load model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyNeutral {
    /// Smoothed harvest estimate (EWMA).
    harvest_ewma: Watts,
    /// EWMA smoothing factor per control window.
    alpha: f64,
}

impl EnergyNeutral {
    /// Creates the policy with a 0.2 smoothing factor.
    pub fn new() -> Self {
        Self {
            harvest_ewma: Watts::ZERO,
            alpha: 0.2,
        }
    }
}

impl Default for EnergyNeutral {
    fn default() -> Self {
        Self::new()
    }
}

impl DutyCyclePolicy for EnergyNeutral {
    fn name(&self) -> &str {
        "energy-neutral controller"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::Full
    }

    fn choose(&mut self, node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        let (Some(harvest), Some(soc)) = (status.harvest_power, status.soc) else {
            // Degraded visibility: fall back to a conservative 10 %.
            return DutyCycle::saturating(0.1);
        };
        self.harvest_ewma = self.harvest_ewma * (1.0 - self.alpha) + harvest * self.alpha;
        if soc.value() < 0.25 {
            // Survival reserve: the overnight budget for standing draw
            // and buffer leakage must outlive estimator lag.
            return DutyCycle::ZERO;
        }
        let budget = self.harvest_ewma * (2.0 * soc.value()).min(2.0);
        node.duty_for_power(budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::{Joules, Ratio};

    fn node() -> SensorNode {
        SensorNode::milliwatt_class()
    }

    #[test]
    fn fixed_ignores_status() {
        let mut p = FixedDuty::new(DutyCycle::saturating(0.3));
        let d1 = p.choose(&node(), &EnergyStatus::none());
        let d2 = p.choose(&node(), &EnergyStatus::voltage_only(Volts::new(0.1)));
        assert_eq!(d1, d2);
        assert_eq!(p.required_monitoring(), MonitoringLevel::None);
    }

    #[test]
    fn ladder_steps_with_voltage() {
        let mut p = VoltageThreshold::supercap_ladder();
        let n = node();
        assert_eq!(
            p.choose(&n, &EnergyStatus::voltage_only(Volts::new(2.5))),
            DutyCycle::ONE
        );
        assert_eq!(
            p.choose(&n, &EnergyStatus::voltage_only(Volts::new(1.8))),
            DutyCycle::saturating(0.25)
        );
        assert_eq!(
            p.choose(&n, &EnergyStatus::voltage_only(Volts::new(1.0))),
            DutyCycle::saturating(0.02)
        );
        // Blind input falls back to the middle band.
        assert_eq!(
            p.choose(&n, &EnergyStatus::none()),
            DutyCycle::saturating(0.25)
        );
    }

    #[test]
    fn energy_neutral_tracks_harvest() {
        let mut p = EnergyNeutral::new();
        let n = node();
        let status = |harvest_mw: f64| {
            EnergyStatus::full(
                Volts::new(2.5),
                Ratio::new(0.5),
                Joules::new(30.0),
                Watts::from_milli(harvest_mw),
            )
        };
        // Let the EWMA settle on a generous harvest.
        let mut d_rich = DutyCycle::ZERO;
        for _ in 0..50 {
            d_rich = p.choose(&n, &status(8.0));
        }
        // Then the harvest collapses.
        let mut d_poor = DutyCycle::ZERO;
        for _ in 0..50 {
            d_poor = p.choose(&n, &status(0.2));
        }
        assert!(d_rich.value() > d_poor.value());
        assert!(d_rich.value() > 0.5, "{d_rich}");
        assert!(d_poor.value() < 0.05, "{d_poor}");
    }

    #[test]
    fn energy_neutral_spends_more_when_full() {
        let n = node();
        let status_at = |soc: f64| {
            EnergyStatus::full(
                Volts::new(2.5),
                Ratio::new(soc),
                Joules::new(30.0),
                Watts::from_milli(3.0),
            )
        };
        let mut p_full = EnergyNeutral::new();
        let mut p_empty = EnergyNeutral::new();
        let (mut d_full, mut d_empty) = (DutyCycle::ZERO, DutyCycle::ZERO);
        for _ in 0..50 {
            d_full = p_full.choose(&n, &status_at(0.95));
            d_empty = p_empty.choose(&n, &status_at(0.05));
        }
        assert!(d_full.value() > d_empty.value());
    }

    #[test]
    fn energy_neutral_degrades_gracefully_when_blinded() {
        let mut p = EnergyNeutral::new();
        let d = p.choose(&node(), &EnergyStatus::voltage_only(Volts::new(2.0)));
        assert_eq!(d, DutyCycle::saturating(0.1));
        assert_eq!(p.required_monitoring(), MonitoringLevel::Full);
    }
}
