//! A forecasting duty-cycle policy: learns the deployment's diurnal
//! harvest profile and budgets against the *expected* future, not just
//! the present — an extension beyond the survey's reactive
//! energy-awareness, in the direction its conclusions point.

use crate::node::SensorNode;
use crate::policy::DutyCyclePolicy;
use crate::status::{EnergyStatus, MonitoringLevel};
use mseh_units::{DutyCycle, Joules, Seconds, Watts};

/// A day-profile forecaster.
///
/// The policy maintains one EWMA harvest estimate per hour of day. Each
/// control window it:
///
/// 1. updates the current hour's bin with the observed harvest;
/// 2. forecasts the energy arriving over the planning horizon by summing
///    the learned bins (unlearned hours fall back to the learned mean);
/// 3. sets the power budget so the store plus forecast, minus a safety
///    margin and reserve, is spent evenly across the horizon.
///
/// Against the purely reactive [`EnergyNeutral`](crate::EnergyNeutral)
/// controller this throttles *before* sunset instead of after the store
/// sags — higher yield at equal uptime once the profile is learned.
///
/// # Examples
///
/// ```
/// use mseh_node::{DayProfileForecast, DutyCyclePolicy, SensorNode, EnergyStatus};
/// use mseh_units::{Seconds, Volts, Ratio, Joules, Watts};
///
/// let node = SensorNode::submilliwatt_class();
/// let mut policy = DayProfileForecast::new(Seconds::from_hours(12.0));
/// let status = EnergyStatus::full(
///     Volts::new(2.5), Ratio::new(0.6), Joules::new(50.0),
///     Watts::from_milli(1.0),
/// ).at(Seconds::from_hours(10.0));
/// let duty = policy.choose(&node, &status);
/// assert!(duty.value() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DayProfileForecast {
    /// Per-hour EWMA harvest estimates.
    bins: [Watts; 24],
    /// Whether a bin has ever been updated.
    seeded: [bool; 24],
    /// EWMA smoothing factor per update.
    alpha: f64,
    /// Planning horizon.
    horizon: Seconds,
    /// Safety discount on the spendable budget.
    safety: f64,
    /// State-of-charge reserve below which the node sleeps.
    reserve_soc: f64,
}

impl DayProfileForecast {
    /// Creates the policy with the given planning horizon (12–24 h is
    /// natural for diurnal sources).
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive.
    pub fn new(horizon: Seconds) -> Self {
        assert!(horizon.value() > 0.0, "horizon must be positive");
        Self {
            bins: [Watts::ZERO; 24],
            seeded: [false; 24],
            alpha: 0.3,
            horizon,
            safety: 0.8,
            reserve_soc: 0.15,
        }
    }

    /// The learned harvest estimate for an hour of day.
    pub fn learned(&self, hour: usize) -> Option<Watts> {
        self.seeded
            .get(hour)
            .copied()
            .unwrap_or(false)
            .then(|| self.bins[hour % 24])
    }

    /// Mean over the learned bins (zero until anything is learned).
    fn learned_mean(&self) -> Watts {
        let mut sum = Watts::ZERO;
        let mut n = 0u32;
        for (bin, &seeded) in self.bins.iter().zip(&self.seeded) {
            if seeded {
                sum += *bin;
                n += 1;
            }
        }
        if n == 0 {
            Watts::ZERO
        } else {
            sum / n as f64
        }
    }

    /// Folds one observed harvest reading into the hourly profile
    /// (EWMA once seeded, direct seed otherwise). [`Self::choose`]
    /// calls this every control window; it is public so sibling
    /// policies like [`ForecastDutySelect`] can learn the same profile
    /// with identical arithmetic.
    pub fn observe(&mut self, harvest: Watts, now: Seconds) {
        let hour = (now.time_of_day().as_hours().floor() as usize) % 24;
        if self.seeded[hour] {
            self.bins[hour] = self.bins[hour] * (1.0 - self.alpha) + harvest * self.alpha;
        } else {
            self.bins[hour] = harvest;
            self.seeded[hour] = true;
        }
    }

    /// The planning horizon the policy budgets over.
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Forecast energy arriving over the horizon starting at `now`.
    pub fn forecast(&self, now: Seconds) -> Joules {
        let fallback = self.learned_mean();
        let start_h = now.time_of_day().as_hours();
        let end_h = start_h + self.horizon.as_hours();
        let mut energy = Joules::ZERO;
        // Integrate hour by hour (partial first/last hours included),
        // stepping to the exact next hour boundary each iteration. The
        // previous `covered += span` accumulation let round-off creep
        // into the running position, so a start just below a boundary
        // produced a long run of sliver steps charged to the wrong bin.
        let mut pos = start_h;
        while pos < end_h {
            let next = (pos.floor() + 1.0).min(end_h);
            let bin = pos.floor() as usize % 24;
            let rate = if self.seeded[bin] {
                self.bins[bin]
            } else {
                fallback
            };
            energy += rate * Seconds::from_hours(next - pos);
            pos = next;
        }
        energy
    }
}

impl DutyCyclePolicy for DayProfileForecast {
    fn name(&self) -> &str {
        "day-profile forecaster"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::Full
    }

    fn choose(&mut self, node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        let (Some(harvest), Some(soc), Some(stored)) =
            (status.harvest_power, status.soc, status.stored)
        else {
            return DutyCycle::saturating(0.1);
        };
        // Learn.
        self.observe(harvest, status.time);
        // Reserve.
        if soc.value() < self.reserve_soc {
            return DutyCycle::ZERO;
        }
        // Budget: spend (store above reserve + forecast) evenly over the
        // horizon, discounted for safety.
        let reserve = stored * (self.reserve_soc / soc.value().max(1e-9));
        let spendable = (stored - reserve).max(Joules::ZERO) + self.forecast(status.time);
        let mut budget = spendable * self.safety / self.horizon;
        // Spill guard: with the store nearly full, even spending would
        // dump the surplus harvest — spend at least the incoming rate,
        // scaled up as the store approaches its ceiling.
        if soc.value() > 0.7 {
            let urgency = (soc.value() - 0.7) / 0.3;
            budget = budget.max(harvest * (1.0 + urgency));
        }
        node.duty_for_power(budget)
    }
}

/// A forecast-driven duty *selector*: learns the same diurnal profile
/// as [`DayProfileForecast`] but instead of smearing the budget into a
/// continuous duty it walks a fixed descending duty ladder and commits
/// to the highest rung whose energy cost over the horizon fits the
/// spendable budget (store above reserve plus discounted forecast).
///
/// The quantized rungs make the selector decisive: it holds a high
/// duty while the forecast covers it and drops a whole rung — not a
/// sliver — when it stops fitting. Against the continuous budgeter
/// this trades smoothness for fewer, larger duty transitions, which
/// suits loads whose useful work is bursty rather than proportional.
#[derive(Debug, Clone)]
pub struct ForecastDutySelect {
    profile: DayProfileForecast,
}

/// Descending candidate duties the selector walks each window.
const DUTY_LADDER: [f64; 10] = [1.0, 0.75, 0.5, 0.35, 0.25, 0.15, 0.1, 0.05, 0.02, 0.01];

impl ForecastDutySelect {
    /// Creates the selector with the given planning horizon.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive.
    pub fn new(horizon: Seconds) -> Self {
        Self {
            profile: DayProfileForecast::new(horizon),
        }
    }

    /// Read access to the learned profile.
    pub fn profile(&self) -> &DayProfileForecast {
        &self.profile
    }
}

impl DutyCyclePolicy for ForecastDutySelect {
    fn name(&self) -> &str {
        "forecast duty-select"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::Full
    }

    fn choose(&mut self, node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        let (Some(harvest), Some(soc), Some(stored)) =
            (status.harvest_power, status.soc, status.stored)
        else {
            return DutyCycle::saturating(0.1);
        };
        self.profile.observe(harvest, status.time);
        if soc.value() < self.profile.reserve_soc {
            return DutyCycle::ZERO;
        }
        let reserve = stored * (self.profile.reserve_soc / soc.value().max(1e-9));
        let spendable = (stored - reserve).max(Joules::ZERO)
            + self.profile.forecast(status.time) * self.profile.safety;
        let horizon = self.profile.horizon;
        let mut picked = *DUTY_LADDER.last().expect("ladder is non-empty");
        for &duty in &DUTY_LADDER {
            let cost = node.average_power(DutyCycle::saturating(duty)) * horizon;
            if cost <= spendable {
                picked = duty;
                break;
            }
        }
        let mut duty = DutyCycle::saturating(picked);
        // Spill guard: with the store nearly full, park the duty at
        // least high enough to absorb the incoming harvest.
        if soc.value() > 0.7 {
            let urgency = (soc.value() - 0.7) / 0.3;
            let floor = node.duty_for_power(harvest * (1.0 + urgency));
            if floor.value() > duty.value() {
                duty = floor;
            }
        }
        duty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::{Ratio, Volts};

    fn status(hour: f64, harvest_mw: f64, soc: f64) -> EnergyStatus {
        EnergyStatus::full(
            Volts::new(2.5),
            Ratio::new(soc),
            Joules::new(80.0 * soc),
            Watts::from_milli(harvest_mw),
        )
        .at(Seconds::from_hours(hour))
    }

    /// Trains the policy on a square-wave day: 6 mW 08:00–16:00, dark
    /// otherwise.
    fn train(policy: &mut DayProfileForecast, node: &SensorNode, days: usize) {
        for day in 0..days {
            for h in 0..24 {
                let hour = day as f64 * 24.0 + h as f64;
                let harvest = if (8..16).contains(&h) { 6.0 } else { 0.0 };
                policy.choose(node, &status(hour, harvest, 0.6));
            }
        }
    }

    #[test]
    fn learns_the_diurnal_profile() {
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(12.0));
        train(&mut p, &node, 3);
        let noon = p.learned(12).expect("seeded");
        let midnight = p.learned(0).expect("seeded");
        assert!((noon.as_milli() - 6.0).abs() < 0.5, "{noon}");
        assert!(midnight.as_milli() < 0.5, "{midnight}");
    }

    #[test]
    fn throttles_before_the_lean_hours() {
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(12.0));
        train(&mut p, &node, 3);
        // At 09:00 the 12 h horizon still contains most of the harvest
        // window; at 15:00 it is mostly night.
        let morning = p.choose(&node, &status(72.0 + 9.0, 6.0, 0.6));
        let pre_dusk = p.choose(&node, &status(72.0 + 15.0, 6.0, 0.6));
        assert!(
            morning.value() > pre_dusk.value(),
            "morning {morning} vs pre-dusk {pre_dusk}"
        );
    }

    #[test]
    fn reserve_floor_halts_spending() {
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(12.0));
        train(&mut p, &node, 1);
        assert_eq!(p.choose(&node, &status(30.0, 6.0, 0.05)), DutyCycle::ZERO);
    }

    #[test]
    fn blind_fallback() {
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(12.0));
        let d = p.choose(&node, &EnergyStatus::voltage_only(Volts::new(2.0)));
        assert!((d.value() - 0.1).abs() < 1e-12);
        assert_eq!(p.required_monitoring(), MonitoringLevel::Full);
    }

    #[test]
    fn unlearned_hours_use_the_mean() {
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(6.0));
        // Learn only one bright hour; the forecast for unseen hours
        // falls back to the learned mean rather than zero.
        p.choose(&node, &status(10.0, 4.0, 0.6));
        let f = p.forecast(Seconds::from_hours(20.0));
        assert!(f.value() > 0.0);
    }

    #[test]
    fn forecast_integrates_exactly_across_a_day_wrap() {
        // Regression: the old integrator accumulated `covered += span`,
        // so starting one round-off below an hour boundary walked the
        // rest of the day in sliver steps charged to the wrong bins.
        // A 24 h forecast over the trained square wave must equal the
        // daily total regardless of the start instant.
        let node = SensorNode::milliwatt_class();
        let mut p = DayProfileForecast::new(Seconds::from_hours(24.0));
        train(&mut p, &node, 4);
        // 8 bright hours at ~6 mW (EWMA-converged).
        let daily: f64 = (0..24)
            .map(|h| p.learned(h).expect("trained").value() * 3600.0)
            .sum();
        for start in [
            Seconds::new(5.0 * 3600.0 - 1e-7),
            Seconds::new(5.0 * 3600.0),
            Seconds::new(5.0 * 3600.0 + 1e-7),
            Seconds::from_hours(13.37),
            Seconds::from_hours(23.999_999_9),
        ] {
            let f = p.forecast(start);
            assert!(
                (f.value() - daily).abs() < 1e-6 * daily,
                "start {start}: forecast {} vs daily {daily}",
                f.value()
            );
        }
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_zero_horizon() {
        DayProfileForecast::new(Seconds::ZERO);
    }

    fn train_select(policy: &mut ForecastDutySelect, node: &SensorNode, days: usize) {
        for day in 0..days {
            for h in 0..24 {
                let hour = day as f64 * 24.0 + h as f64;
                let harvest = if (8..16).contains(&h) { 6.0 } else { 0.0 };
                policy.choose(node, &status(hour, harvest, 0.6));
            }
        }
    }

    #[test]
    fn selector_picks_ladder_rungs() {
        let node = SensorNode::milliwatt_class();
        let mut p = ForecastDutySelect::new(Seconds::from_hours(12.0));
        train_select(&mut p, &node, 3);
        let d = p.choose(&node, &status(72.0 + 9.0, 6.0, 0.6));
        assert!(
            DUTY_LADDER.iter().any(|&r| (d.value() - r).abs() < 1e-12),
            "duty {d} is not a ladder rung"
        );
    }

    #[test]
    fn selector_throttles_before_the_lean_hours() {
        let node = SensorNode::milliwatt_class();
        let mut p = ForecastDutySelect::new(Seconds::from_hours(12.0));
        train_select(&mut p, &node, 3);
        let morning = p.choose(&node, &status(72.0 + 9.0, 6.0, 0.6));
        let pre_dusk = p.choose(&node, &status(72.0 + 15.0, 6.0, 0.6));
        assert!(
            morning.value() >= pre_dusk.value(),
            "morning {morning} vs pre-dusk {pre_dusk}"
        );
    }

    #[test]
    fn selector_reserve_floor_halts_spending() {
        let node = SensorNode::milliwatt_class();
        let mut p = ForecastDutySelect::new(Seconds::from_hours(12.0));
        train_select(&mut p, &node, 1);
        assert_eq!(p.choose(&node, &status(30.0, 6.0, 0.05)), DutyCycle::ZERO);
    }

    #[test]
    fn selector_blind_fallback() {
        let node = SensorNode::milliwatt_class();
        let mut p = ForecastDutySelect::new(Seconds::from_hours(12.0));
        let d = p.choose(&node, &EnergyStatus::voltage_only(Volts::new(2.0)));
        assert!((d.value() - 0.1).abs() < 1e-12);
        assert_eq!(p.required_monitoring(), MonitoringLevel::Full);
    }

    #[test]
    fn selector_spill_guard_raises_duty_when_full() {
        let node = SensorNode::submilliwatt_class();
        let mut p = ForecastDutySelect::new(Seconds::from_hours(12.0));
        // Empty profile + low store: ladder pick is the bottom rung.
        let lean = p.choose(&node, &status(0.0, 0.0, 0.3));
        // Nearly full with a strong harvest: the guard must spend at
        // least the incoming rate.
        let full = p.choose(&node, &status(1.0, 5.0, 0.95));
        assert!(full.value() > lean.value(), "{full} vs {lean}");
        let floor = node.duty_for_power(Watts::from_milli(5.0));
        assert!(full.value() + 1e-12 >= floor.value().min(1.0));
    }
}
