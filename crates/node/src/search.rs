//! Seeded hill-climbing duty search: a model-free adaptive policy that
//! treats the duty cycle as a knob and climbs toward the highest duty
//! the energy income can sustain — the "intelligent energy harvesting"
//! direction the survey's conclusions point at, with zero knowledge of
//! the harvest profile.

use crate::node::SensorNode;
use crate::policy::DutyCyclePolicy;
use crate::status::{EnergyStatus, MonitoringLevel};
use mseh_units::DutyCycle;

/// A seeded hill climber over the duty cycle.
///
/// Each control window the policy scores the duty it ran last window as
/// `duty + balance_weight · Δsoc`: work done, credited against the
/// store drift it caused. An improving score keeps the current search
/// direction and grows the step (accelerating along a slope); a
/// worsening one reverses direction and shrinks the step (bracketing
/// the optimum). A rare seeded direction kick keeps the climber from
/// parking on a plateau, and a survival floor drops straight to zero
/// duty — decaying the resume point — when the store runs low.
///
/// Determinism: the only randomness is an inline splitmix64 stream
/// seeded at construction, so a given seed always produces the same
/// duty sequence for the same status sequence — the property the
/// policy-arena bit-identity contract relies on.
#[derive(Debug, Clone)]
pub struct HillClimbDuty {
    rng: u64,
    duty: f64,
    step: f64,
    dir: f64,
    prev_score: f64,
    prev_soc: f64,
    have_prev: bool,
    balance_weight: f64,
}

impl HillClimbDuty {
    /// Creates the climber with its randomness seed. The search starts
    /// at 10% duty, stepping 5% per window.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: seed,
            duty: 0.1,
            step: 0.05,
            dir: 1.0,
            prev_score: 0.0,
            prev_soc: 0.0,
            have_prev: false,
            balance_weight: 2.0,
        }
    }

    /// splitmix64: one 64-bit draw per call.
    fn next_bits(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl DutyCyclePolicy for HillClimbDuty {
    fn name(&self) -> &str {
        "hill-climb duty search"
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        MonitoringLevel::Full
    }

    fn choose(&mut self, _node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        let Some(soc) = status.soc else {
            return DutyCycle::saturating(0.1);
        };
        let soc = soc.value();

        // Survival floor: stop spending, decay the resume point so the
        // climb restarts gently, and forget the stale score.
        if soc < 0.2 {
            self.duty = (self.duty * 0.5).max(0.01);
            self.have_prev = false;
            self.prev_soc = soc;
            return DutyCycle::ZERO;
        }

        if self.have_prev {
            // Score the duty we just ran: work done plus the store
            // drift it caused.
            let score = self.duty + self.balance_weight * (soc - self.prev_soc);
            if score > self.prev_score {
                self.step = (self.step * 1.4).min(0.25);
            } else {
                self.dir = -self.dir;
                self.step = (self.step * 0.5).max(0.01);
            }
            self.prev_score = score;
        } else {
            self.prev_score = self.duty;
            self.have_prev = true;
        }

        // Rare seeded kick (~2% of windows) off plateaus.
        if self.next_bits().is_multiple_of(50) {
            self.dir = -self.dir;
        }

        self.prev_soc = soc;
        self.duty = (self.duty + self.dir * self.step).clamp(0.01, 1.0);
        DutyCycle::saturating(self.duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_units::{Joules, Ratio, Seconds, Volts, Watts};

    fn status(hour: f64, soc: f64) -> EnergyStatus {
        EnergyStatus::full(
            Volts::new(2.5),
            Ratio::new(soc),
            Joules::new(80.0 * soc),
            Watts::from_milli(1.0),
        )
        .at(Seconds::from_hours(hour))
    }

    #[test]
    fn same_seed_same_trajectory() {
        let node = SensorNode::milliwatt_class();
        let mut a = HillClimbDuty::new(42);
        let mut b = HillClimbDuty::new(42);
        for w in 0..200 {
            let soc = 0.4 + 0.3 * ((w as f64) * 0.13).sin().abs();
            let s = status(w as f64 * 0.25, soc);
            let da = a.choose(&node, &s);
            let db = b.choose(&node, &s);
            assert_eq!(da.value().to_bits(), db.value().to_bits(), "window {w}");
        }
    }

    #[test]
    fn different_seeds_eventually_diverge() {
        let node = SensorNode::milliwatt_class();
        let mut a = HillClimbDuty::new(1);
        let mut b = HillClimbDuty::new(2);
        let mut diverged = false;
        for w in 0..500 {
            let s = status(w as f64 * 0.25, 0.55);
            if a.choose(&node, &s) != b.choose(&node, &s) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "seeded kicks never separated the trajectories");
    }

    #[test]
    fn climbs_when_the_store_holds() {
        let node = SensorNode::milliwatt_class();
        let mut p = HillClimbDuty::new(7);
        // A store that never sags rewards every increase.
        let mut last = DutyCycle::ZERO;
        for w in 0..60 {
            last = p.choose(&node, &status(w as f64 * 0.25, 0.6));
        }
        assert!(last.value() > 0.3, "never climbed: {last}");
    }

    #[test]
    fn survival_floor_sleeps_and_decays() {
        let node = SensorNode::milliwatt_class();
        let mut p = HillClimbDuty::new(9);
        for w in 0..20 {
            p.choose(&node, &status(w as f64 * 0.25, 0.6));
        }
        let before = p.duty;
        assert_eq!(p.choose(&node, &status(6.0, 0.1)), DutyCycle::ZERO);
        assert!(p.duty < before, "resume point did not decay");
    }

    #[test]
    fn blind_fallback() {
        let node = SensorNode::milliwatt_class();
        let mut p = HillClimbDuty::new(3);
        let d = p.choose(&node, &EnergyStatus::voltage_only(Volts::new(2.0)));
        assert!((d.value() - 0.1).abs() < 1e-12);
        assert_eq!(p.required_monitoring(), MonitoringLevel::Full);
    }
}
