//! The [`FailoverPolicy`] wrapper: collapse detection + degraded-mode
//! recovery around any duty-cycle policy.

use crate::node::SensorNode;
use crate::policy::DutyCyclePolicy;
use crate::status::{EnergyStatus, MonitoringLevel};
use mseh_units::{DutyCycle, Joules, Seconds, Volts};

/// Wraps any [`DutyCyclePolicy`] with energy-collapse detection and a
/// degraded recovery mode — the reaction half of the survey's
/// monitoring/intelligence argument: a platform that can *see* a store
/// die can also *do* something about it.
///
/// Detection triggers on either signal from consecutive
/// [`EnergyStatus`] reports:
///
/// * **stored-energy collapse** — reported stored energy fell by more
///   than `collapse_fraction` between reports (catches a primary-store
///   fault on multi-store platforms, where the diode-OR bus voltage is
///   propped up by the healthy secondary and a voltage floor alone
///   would stay blind);
/// * **voltage collapse** — the store voltage crossed below
///   `collapse_voltage` (catches single-store platforms with only
///   `StoreVoltage` monitoring).
///
/// On trigger the wrapper enters degraded mode for `hold`: the inner
/// policy still runs, but its choice is capped at `degraded_duty`,
/// shedding load while whatever backup store the platform has carries
/// the bus (re-routing to the backup is the platform's diode-OR /
/// hot-swap path; the policy's job is to shrink demand to what that
/// path can serve). Each engagement increments
/// [`failover_count`](DutyCyclePolicy::failover_count), which the
/// simulation runner surfaces as a `FailoverEngaged` event.
///
/// # Examples
///
/// ```
/// use mseh_node::{DutyCyclePolicy, EnergyStatus, FailoverPolicy, FixedDuty, SensorNode};
/// use mseh_units::{DutyCycle, Joules, Ratio, Seconds, Volts, Watts};
///
/// let node = SensorNode::submilliwatt_class();
/// let mut policy = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::ONE)));
/// let healthy = EnergyStatus::full(
///     Volts::new(2.5), Ratio::new(0.8), Joules::new(50.0), Watts::ZERO);
/// assert_eq!(policy.choose(&node, &healthy).value(), 1.0);
/// // The primary store fails open: stored energy collapses.
/// let collapsed = EnergyStatus::full(
///     Volts::new(2.4), Ratio::new(0.1), Joules::new(5.0), Watts::ZERO)
///     .at(Seconds::from_minutes(10.0));
/// assert!(policy.choose(&node, &collapsed).value() < 0.1);
/// assert_eq!(policy.failover_count(), 1);
/// ```
pub struct FailoverPolicy {
    inner: Box<dyn DutyCyclePolicy>,
    name: String,
    degraded_duty: DutyCycle,
    hold: Seconds,
    collapse_fraction: f64,
    collapse_voltage: Volts,
    prev_stored: Option<Joules>,
    prev_voltage: Option<Volts>,
    degraded_until: Option<Seconds>,
    failovers: u64,
}

impl FailoverPolicy {
    /// Wraps `inner` with default thresholds: degraded duty 5 %, 2 h
    /// hold, 50 % stored-energy drop, 0.5 V voltage floor.
    pub fn new(inner: Box<dyn DutyCyclePolicy>) -> Self {
        let name = format!("failover({})", inner.name());
        Self {
            inner,
            name,
            degraded_duty: DutyCycle::saturating(0.05),
            hold: Seconds::from_hours(2.0),
            collapse_fraction: 0.5,
            collapse_voltage: Volts::new(0.5),
            prev_stored: None,
            prev_voltage: None,
            degraded_until: None,
            failovers: 0,
        }
    }

    /// Sets the duty ceiling applied while degraded.
    pub fn with_degraded_duty(mut self, duty: DutyCycle) -> Self {
        self.degraded_duty = duty;
        self
    }

    /// Sets how long degraded mode holds after a trigger.
    ///
    /// # Panics
    ///
    /// Panics if `hold` is not positive.
    pub fn with_hold(mut self, hold: Seconds) -> Self {
        assert!(hold.value() > 0.0, "hold time must be positive");
        self.hold = hold;
        self
    }

    /// Sets the detection thresholds: a relative stored-energy drop in
    /// `(0, 1]` and a store-voltage floor.
    ///
    /// # Panics
    ///
    /// Panics if `collapse_fraction` is outside `(0, 1]`.
    pub fn with_thresholds(mut self, collapse_fraction: f64, collapse_voltage: Volts) -> Self {
        assert!(
            collapse_fraction > 0.0 && collapse_fraction <= 1.0,
            "collapse fraction must be in (0, 1]"
        );
        self.collapse_fraction = collapse_fraction;
        self.collapse_voltage = collapse_voltage;
        self
    }

    /// Whether the policy is currently in degraded mode at `now`.
    pub fn is_degraded_at(&self, now: Seconds) -> bool {
        self.degraded_until.is_some_and(|until| now < until)
    }

    fn detect_collapse(&self, status: &EnergyStatus) -> bool {
        let stored_collapse = match (self.prev_stored, status.stored) {
            (Some(prev), Some(cur)) => {
                prev.value() > 1e-9 && cur.value() < prev.value() * (1.0 - self.collapse_fraction)
            }
            _ => false,
        };
        // Edge-triggered: only a *crossing* below the floor counts, so a
        // store that lives below it (or a platform that starts empty)
        // doesn't retrigger every window.
        let voltage_collapse = match (self.prev_voltage, status.store_voltage) {
            (Some(prev), Some(cur)) => prev >= self.collapse_voltage && cur < self.collapse_voltage,
            _ => false,
        };
        stored_collapse || voltage_collapse
    }
}

impl DutyCyclePolicy for FailoverPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn required_monitoring(&self) -> MonitoringLevel {
        // Detection needs at least the sense line; the inner policy may
        // need more.
        self.inner
            .required_monitoring()
            .max(MonitoringLevel::StoreVoltage)
    }

    fn choose(&mut self, node: &SensorNode, status: &EnergyStatus) -> DutyCycle {
        let inner_duty = self.inner.choose(node, status);
        if self.detect_collapse(status) {
            self.failovers += 1;
            self.degraded_until = Some(status.time + self.hold);
        }
        self.prev_stored = status.stored;
        self.prev_voltage = status.store_voltage;
        if self.is_degraded_at(status.time) && inner_duty.value() > self.degraded_duty.value() {
            self.degraded_duty
        } else {
            inner_duty
        }
    }

    fn failover_count(&self) -> u64 {
        self.failovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FixedDuty, VoltageThreshold};
    use mseh_units::{Ratio, Watts};

    fn full_status(stored: f64, v: f64) -> EnergyStatus {
        EnergyStatus::full(
            Volts::new(v),
            Ratio::new(0.5),
            Joules::new(stored),
            Watts::ZERO,
        )
    }

    #[test]
    fn passes_through_while_healthy() {
        let node = SensorNode::submilliwatt_class();
        let mut p = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::saturating(0.4))));
        for k in 0..5 {
            let status = full_status(50.0 - k as f64, 2.5).at(Seconds::from_minutes(k as f64));
            assert_eq!(p.choose(&node, &status).value(), 0.4);
        }
        assert_eq!(p.failover_count(), 0);
    }

    #[test]
    fn stored_collapse_triggers_and_holds_then_releases() {
        let node = SensorNode::submilliwatt_class();
        let mut p = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::ONE)))
            .with_degraded_duty(DutyCycle::saturating(0.02))
            .with_hold(Seconds::from_hours(1.0));
        p.choose(&node, &full_status(50.0, 2.5).at(Seconds::ZERO));
        // Primary store dies: stored drops 90 % between reports.
        let d = p.choose(
            &node,
            &full_status(5.0, 2.4).at(Seconds::from_minutes(10.0)),
        );
        assert_eq!(d.value(), 0.02);
        assert_eq!(p.failover_count(), 1);
        // Still held inside the hold window.
        let d = p.choose(
            &node,
            &full_status(5.0, 2.4).at(Seconds::from_minutes(30.0)),
        );
        assert_eq!(d.value(), 0.02);
        // Released after the hold elapses (no further collapse).
        let d = p.choose(&node, &full_status(5.0, 2.4).at(Seconds::from_hours(1.5)));
        assert_eq!(d.value(), 1.0);
        assert_eq!(p.failover_count(), 1);
    }

    #[test]
    fn voltage_crossing_triggers_once() {
        let node = SensorNode::submilliwatt_class();
        let mut p = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::ONE)))
            .with_thresholds(0.5, Volts::new(1.0));
        let v = |volts: f64, min: f64| {
            EnergyStatus::voltage_only(Volts::new(volts)).at(Seconds::from_minutes(min))
        };
        p.choose(&node, &v(2.0, 0.0));
        p.choose(&node, &v(0.4, 10.0)); // crossing: triggers
        assert_eq!(p.failover_count(), 1);
        p.choose(&node, &v(0.3, 20.0)); // still below: no retrigger
        p.choose(&node, &v(0.2, 30.0));
        assert_eq!(p.failover_count(), 1);
    }

    #[test]
    fn requires_at_least_the_sense_line() {
        let blind = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::ONE)));
        assert_eq!(blind.required_monitoring(), MonitoringLevel::StoreVoltage);
        let ladder = FailoverPolicy::new(Box::new(VoltageThreshold::supercap_ladder()));
        assert_eq!(ladder.required_monitoring(), MonitoringLevel::StoreVoltage);
        assert!(ladder.name.contains("failover"));
    }

    #[test]
    fn degraded_duty_caps_but_never_raises() {
        // An inner policy already below the cap keeps its own choice.
        let node = SensorNode::submilliwatt_class();
        let mut p = FailoverPolicy::new(Box::new(FixedDuty::new(DutyCycle::saturating(0.01))))
            .with_degraded_duty(DutyCycle::saturating(0.05));
        p.choose(&node, &full_status(50.0, 2.5).at(Seconds::ZERO));
        let d = p.choose(
            &node,
            &full_status(1.0, 2.4).at(Seconds::from_minutes(10.0)),
        );
        assert_eq!(d.value(), 0.01);
        assert_eq!(p.failover_count(), 1);
    }
}
