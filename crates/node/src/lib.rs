//! Embedded-device load models: duty-cycled wireless sensor nodes and the
//! energy-aware policies that drive them.
//!
//! Every platform the survey classifies exists to power a wireless sensor
//! node; what differs is how much the node can *see* of its energy
//! hardware and therefore how well it can adapt. This crate models:
//!
//! * [`SensorNode`] — sleep floor + per-cycle burst energy, in the
//!   mW class (System A) and sub-mW class (System B);
//! * [`MonitoringLevel`] / [`EnergyStatus`] — the monitoring tiers of
//!   Table I (none / store voltage only / full), as typed visibility;
//! * [`DutyCyclePolicy`] — [`FixedDuty`], the [`VoltageThreshold`] ladder
//!   (System D's capability), the [`EnergyNeutral`] controller
//!   (Systems A/B capability), and the [`DayProfileForecast`] extension
//!   that learns the deployment's diurnal profile.
//!
//! # Examples
//!
//! ```
//! use mseh_node::{SensorNode, EnergyNeutral, DutyCyclePolicy, EnergyStatus};
//! use mseh_units::{Volts, Ratio, Joules, Watts};
//!
//! let node = SensorNode::submilliwatt_class();
//! let mut policy = EnergyNeutral::new();
//! let status = EnergyStatus::full(
//!     Volts::new(2.6),
//!     Ratio::new(0.7),
//!     Joules::new(45.0),
//!     Watts::from_micro(300.0),
//! );
//! let duty = policy.choose(&node, &status);
//! assert!(duty.value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod failover;
mod forecast;
mod node;
mod policy;
mod search;
mod status;

pub use failover::FailoverPolicy;
pub use forecast::{DayProfileForecast, ForecastDutySelect};
pub use node::{NodeDemand, SensorNode};
pub use policy::{DutyCyclePolicy, EnergyNeutral, FixedDuty, VoltageThreshold};
pub use search::HillClimbDuty;
pub use status::{EnergyStatus, MonitoringLevel};
