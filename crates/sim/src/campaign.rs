//! Resilience campaigns: run a platform through N seeded fault
//! scenarios and measure availability.
//!
//! [`run_resilience_campaign`] is the fault-injection counterpart of
//! the seed ensemble: each seed builds a [`FaultScenario`] (platform
//! with injected fault wrappers + environment + policy + the injected
//! [`FaultSchedule`]), the scenarios fan out across the thread pool,
//! and the summary reports the metrics the survey's redundancy argument
//! actually turns on — uptime under k faults, time-to-detect,
//! time-to-recover, energy stranded, longest outage — bit-identical at
//! any thread count.
//!
//! Each scenario runs in segments of
//! [`CampaignConfig::check_interval`]; between segments an optional
//! recovery hook can repair the platform (hot-swap a spare store
//! through the management path), modelling a maintenance visit or an
//! autonomous re-route.

use crate::cancel::{tripped, CancelToken};
use crate::ensemble::Spread;
use crate::fault::FaultSchedule;
use crate::observe::{AuditReport, ConservationAuditor, SimObserver};
use crate::parallel::{par_map_with, thread_count};
use crate::platform::Platform;
use crate::runner::{run_simulation_core, SimConfig};
use mseh_env::Environment;
use mseh_node::{DutyCyclePolicy, SensorNode};
use mseh_units::{DutyCycle, Joules, Seconds};

/// Configuration of a resilience campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// The per-scenario simulation configuration (shared by all seeds).
    pub sim: SimConfig,
    /// Segment length between recovery-hook invocations. Should divide
    /// the duration evenly; a final remainder shorter than one step is
    /// dropped.
    pub check_interval: Seconds,
}

impl CampaignConfig {
    /// A campaign over `duration` with the default step/control widths
    /// and hourly recovery checks.
    pub fn over(duration: Seconds) -> Self {
        Self {
            sim: SimConfig::over(duration),
            check_interval: Seconds::from_hours(1.0),
        }
    }

    /// Sets the recovery-check segment length.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive.
    pub fn with_check_interval(mut self, interval: Seconds) -> Self {
        assert!(interval.value() > 0.0, "check interval must be positive");
        self.check_interval = interval;
        self
    }
}

/// One seeded fault scenario: a prepared platform (fault wrappers
/// already injected), its environment and policy, the injected fault
/// timeline (for detection-latency metrics), and an optional
/// between-segments recovery hook.
pub struct FaultScenario<P> {
    /// The platform under test, with fault wrappers installed.
    pub platform: P,
    /// The environment driving the scenario.
    pub env: Environment,
    /// The duty-cycle policy (possibly a `FailoverPolicy` wrapper).
    pub policy: Box<dyn DutyCyclePolicy>,
    /// The injected fault timeline, referenced when computing
    /// time-to-detect (the platform wrappers hold clones of it).
    pub schedule: FaultSchedule,
    /// Invoked between segments with the platform and the current
    /// simulation time; returns `true` when it performed a repair
    /// (counted as a recovery and as a recovery signal for
    /// time-to-recover).
    #[allow(clippy::type_complexity)]
    pub recovery: Option<Box<dyn FnMut(&mut P, Seconds) -> bool>>,
}

impl<P> FaultScenario<P> {
    /// A scenario with no recovery hook.
    pub fn new(
        platform: P,
        env: Environment,
        policy: Box<dyn DutyCyclePolicy>,
        schedule: FaultSchedule,
    ) -> Self {
        Self {
            platform,
            env,
            policy,
            schedule,
            recovery: None,
        }
    }

    /// Attaches a between-segments recovery hook.
    pub fn with_recovery(mut self, hook: impl FnMut(&mut P, Seconds) -> bool + 'static) -> Self {
        self.recovery = Some(Box::new(hook));
        self
    }
}

/// Availability metrics from one fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The scenario's seed.
    pub seed: u64,
    /// Fraction of demanded load energy served across the horizon.
    pub uptime: f64,
    /// Total energy delivered to the load.
    pub delivered: Joules,
    /// Total unserved load energy.
    pub shortfall: Joules,
    /// Faults fired across the platform's devices.
    pub faults_fired: u64,
    /// Fired faults that cleared (devices recovered on their own).
    pub faults_cleared: u64,
    /// Times the policy engaged its failover path.
    pub failovers: u64,
    /// Times the recovery hook reported a repair.
    pub recoveries: u64,
    /// Delay from the first injected fault to its first observation
    /// (`FaultFire` at a control-window edge); `None` when the schedule
    /// is empty or nothing was detected.
    pub time_to_detect: Option<Seconds>,
    /// Delay from the first detection to the first recovery signal
    /// (`FaultClear`, `FailoverEngaged`, or a hook repair); `None` when
    /// nothing recovered.
    pub time_to_recover: Option<Seconds>,
    /// Peak energy stranded by active faults (sampled at segment
    /// boundaries).
    pub energy_stranded: Joules,
    /// Longest contiguous run of shortfall steps.
    pub longest_outage: Seconds,
    /// The per-window conservation audit across the whole scenario,
    /// held through every fault and recovery.
    pub audit: AuditReport,
}

/// Aggregate results of a resilience campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSummary {
    /// The seeds, in the order their outcomes appear.
    pub seeds: Vec<u64>,
    /// Per-seed outcomes, seed-aligned.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Uptime across seeds.
    pub uptime: Spread,
    /// Longest outage (seconds) across seeds.
    pub longest_outage_s: Spread,
    /// Peak stranded energy (joules) across seeds.
    pub stranded_j: Spread,
    /// Mean time-to-detect over the seeds where a fault was detected.
    pub mean_time_to_detect: Option<Seconds>,
    /// Mean time-to-recover over the seeds where recovery happened.
    pub mean_time_to_recover: Option<Seconds>,
    /// Faults fired, summed over all scenarios.
    pub total_faults: u64,
    /// Fault clears, summed over all scenarios.
    pub total_clears: u64,
    /// Failover engagements, summed over all scenarios.
    pub total_failovers: u64,
    /// Hook repairs, summed over all scenarios.
    pub total_recoveries: u64,
    /// The worst per-window audit residual across all scenarios.
    pub worst_audit_relative: f64,
}

/// Tracks availability signals from the event stream: first detection,
/// first recovery signal, and outage runs stitched across segment
/// boundaries (the campaign re-enters the runner per segment, so
/// contiguity is judged by event-time gaps, not per-run step counts).
struct AvailabilityTracker {
    dt: f64,
    first_fire: Option<f64>,
    first_recovery: Option<f64>,
    outage_start: Option<f64>,
    last_shortfall: f64,
    longest_outage: f64,
}

impl AvailabilityTracker {
    fn new(dt: Seconds) -> Self {
        Self {
            dt: dt.value(),
            first_fire: None,
            first_recovery: None,
            outage_start: None,
            last_shortfall: f64::NEG_INFINITY,
            longest_outage: 0.0,
        }
    }

    fn note_recovery(&mut self, t: Seconds) {
        if self.first_fire.is_some() && self.first_recovery.is_none() {
            self.first_recovery = Some(t.value());
        }
    }
}

impl SimObserver for AvailabilityTracker {
    fn on_fault_fire(&mut self, time: Seconds, _lost: Joules) {
        if self.first_fire.is_none() {
            self.first_fire = Some(time.value());
        }
    }

    fn on_fault_clear(&mut self, time: Seconds, _restored: Joules) {
        self.note_recovery(time);
    }

    fn on_failover_engaged(&mut self, time: Seconds, _duty: DutyCycle) {
        self.note_recovery(time);
    }

    fn on_shortfall(&mut self, time: Seconds, _energy: Joules) {
        let t = time.value();
        // Steps are dt apart; a gap beyond 1.5 dt means served steps
        // (or a fractional final step) separated two outages.
        if self.outage_start.is_none() || t - self.last_shortfall > 1.5 * self.dt {
            self.outage_start = Some(t);
        }
        self.last_shortfall = t;
        let start = self.outage_start.expect("set above");
        self.longest_outage = self.longest_outage.max(t + self.dt - start);
    }
}

/// Runs one prepared scenario through the segmented kernel. Returns
/// `None` when `cancel` trips mid-scenario (checked between segments
/// and, via the kernel checkpoint, once per control window).
fn run_scenario<P: Platform>(
    seed: u64,
    mut scenario: FaultScenario<P>,
    node: &SensorNode,
    config: CampaignConfig,
    cancel: Option<&CancelToken>,
) -> Option<ScenarioOutcome> {
    let sim = config.sim;
    let mut tracker = AvailabilityTracker::new(sim.dt);
    let mut auditor = ConservationAuditor::new();
    let mut delivered = Joules::ZERO;
    let mut shortfall = Joules::ZERO;
    let mut recoveries = 0u64;
    let mut peak_stranded = Joules::ZERO;

    let total = sim.duration.value();
    let check = config.check_interval.value();
    let mut covered = 0.0;
    while total - covered >= sim.dt.value() {
        let seg = check.min(total - covered);
        let seg_config = SimConfig {
            duration: Seconds::new(seg),
            ..sim.starting_at(sim.start_at + Seconds::new(covered))
        };
        let result = run_simulation_core(
            &mut scenario.platform,
            &scenario.env,
            node,
            scenario.policy.as_mut(),
            seg_config,
            &mut [&mut tracker, &mut auditor],
            cancel,
        )?;
        delivered += result.delivered;
        shortfall += result.shortfall;
        covered += seg;
        peak_stranded = peak_stranded.max(scenario.platform.stranded_energy());
        if covered < total {
            if let Some(hook) = scenario.recovery.as_mut() {
                let now = sim.start_at + Seconds::new(covered);
                if hook(&mut scenario.platform, now) {
                    recoveries += 1;
                    tracker.note_recovery(now);
                }
            }
        }
    }

    let demanded = delivered + shortfall;
    let uptime = if demanded.value() > 0.0 {
        1.0 - (shortfall.value() / demanded.value()).clamp(0.0, 1.0)
    } else {
        1.0
    };
    let (faults_fired, faults_cleared) = scenario.platform.fault_counts();
    let time_to_detect = match (scenario.schedule.first_fault(), tracker.first_fire) {
        (Some(injected), Some(seen)) => Some(Seconds::new((seen - injected.value()).max(0.0))),
        _ => None,
    };
    let time_to_recover = match (tracker.first_fire, tracker.first_recovery) {
        (Some(fire), Some(rec)) => Some(Seconds::new((rec - fire).max(0.0))),
        _ => None,
    };

    Some(ScenarioOutcome {
        seed,
        uptime,
        delivered,
        shortfall,
        faults_fired,
        faults_cleared,
        failovers: scenario.policy.failover_count(),
        recoveries,
        time_to_detect,
        time_to_recover,
        energy_stranded: peak_stranded,
        longest_outage: Seconds::new(tracker.longest_outage),
        audit: auditor.report(),
    })
}

/// Runs `make_scenario(seed)` for every seed, fanned across the shared
/// thread pool, and aggregates availability metrics.
///
/// Scenarios are pure functions of their seed and every draw is
/// precomputed (the stochastic [`FaultSchedule`] draws at
/// construction), so the summary is bit-for-bit identical at any
/// thread count.
///
/// # Panics
///
/// Panics if `seeds` is empty.
///
/// # Examples
///
/// ```
/// use mseh_sim::{
///     run_resilience_campaign, CampaignConfig, FaultScenario, FaultSchedule,
///     IntermittentStorage,
/// };
/// use mseh_core::{PowerUnit, StoreRole, PortRequirement};
/// use mseh_power::DcDcConverter;
/// use mseh_storage::Supercap;
/// use mseh_node::{SensorNode, FixedDuty};
/// use mseh_env::Environment;
/// use mseh_units::{DutyCycle, Seconds, Volts};
///
/// let summary = run_resilience_campaign(
///     &[1, 2, 3],
///     |seed| {
///         let mut cap = Supercap::edlc_22f();
///         cap.set_voltage(Volts::new(2.5));
///         let schedule = FaultSchedule::stochastic(
///             seed,
///             Seconds::from_hours(2.0),
///             Seconds::from_minutes(30.0),
///             Seconds::from_hours(6.0),
///         );
///         let mut unit = PowerUnit::builder("campaign demo")
///             .store_port(
///                 PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
///                 Some(Box::new(cap)), StoreRole::PrimaryBuffer, true)
///             .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
///             .build();
///         unit.instrument_store(0, |inner| {
///             Box::new(IntermittentStorage::new(inner, schedule.clone()))
///         });
///         FaultScenario::new(
///             unit,
///             Environment::indoor_office(seed),
///             Box::new(FixedDuty::new(DutyCycle::saturating(0.02))),
///             schedule,
///         )
///     },
///     &SensorNode::submilliwatt_class(),
///     CampaignConfig::over(Seconds::from_hours(6.0)),
/// );
/// assert_eq!(summary.outcomes.len(), 3);
/// assert!(summary.total_faults > 0);
/// assert!(summary.worst_audit_relative < 1e-6);
/// ```
pub fn run_resilience_campaign<P, F>(
    seeds: &[u64],
    make_scenario: F,
    node: &SensorNode,
    config: CampaignConfig,
) -> CampaignSummary
where
    P: Platform,
    F: Fn(u64) -> FaultScenario<P> + Sync,
{
    run_resilience_campaign_with_threads(thread_count(), seeds, make_scenario, node, config)
}

/// [`run_resilience_campaign`] with an explicit worker count (`1` runs
/// inline on the calling thread).
///
/// # Panics
///
/// Panics if `seeds` is empty or `threads` is zero.
pub fn run_resilience_campaign_with_threads<P, F>(
    threads: usize,
    seeds: &[u64],
    make_scenario: F,
    node: &SensorNode,
    config: CampaignConfig,
) -> CampaignSummary
where
    P: Platform,
    F: Fn(u64) -> FaultScenario<P> + Sync,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let outcomes = par_map_with(threads, seeds, |&seed| {
        run_scenario(seed, make_scenario(seed), node, config, None)
            .expect("a run without a cancel token cannot be cancelled")
    });
    summarize_campaign(seeds, outcomes)
}

/// [`run_resilience_campaign`] as a daemon-facing entry point:
/// validation errors come back as `Err` instead of panicking, a
/// cooperative [`CancelToken`] stops the campaign within one control
/// window of compute per in-flight scenario (`Ok(None)`), and an
/// optional `progress` callback reports `(completed, total)` scenario
/// counts as workers finish them.
///
/// `threads == 0` selects [`thread_count`]. An un-cancelled campaign is
/// bit-identical to [`run_resilience_campaign_with_threads`] at any
/// thread count.
pub fn run_resilience_campaign_cancellable<P, F>(
    threads: usize,
    seeds: &[u64],
    make_scenario: F,
    node: &SensorNode,
    config: CampaignConfig,
    cancel: &CancelToken,
    progress: Option<&(dyn Fn(u64, u64) + Sync)>,
) -> Result<Option<CampaignSummary>, String>
where
    P: Platform,
    F: Fn(u64) -> FaultScenario<P> + Sync,
{
    if seeds.is_empty() {
        return Err("campaign needs at least one seed".into());
    }
    let sim = config.sim;
    if !(sim.dt.value().is_finite() && sim.dt.value() > 0.0) {
        return Err(format!("dt must be positive and finite, got {}", sim.dt));
    }
    if !sim.duration.value().is_finite() || sim.duration < sim.dt {
        return Err(format!(
            "duration {} must be finite and cover at least one step of {}",
            sim.duration, sim.dt
        ));
    }
    if !(config.check_interval.value().is_finite() && config.check_interval.value() > 0.0) {
        return Err(format!(
            "check interval must be positive and finite, got {}",
            config.check_interval
        ));
    }
    let threads = if threads == 0 {
        thread_count()
    } else {
        threads
    };
    let done = std::sync::atomic::AtomicU64::new(0);
    let total = seeds.len() as u64;
    let outcomes = par_map_with(threads, seeds, |&seed| {
        if tripped(Some(cancel)) {
            return None;
        }
        let outcome = run_scenario(seed, make_scenario(seed), node, config, Some(cancel));
        if outcome.is_some() {
            let k = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            if let Some(report) = progress {
                report(k, total);
            }
        }
        outcome
    });
    let outcomes: Option<Vec<ScenarioOutcome>> = outcomes.into_iter().collect();
    Ok(outcomes.map(|outcomes| summarize_campaign(seeds, outcomes)))
}

fn summarize_campaign(seeds: &[u64], outcomes: Vec<ScenarioOutcome>) -> CampaignSummary {
    let uptimes: Vec<f64> = outcomes.iter().map(|o| o.uptime).collect();
    let outages: Vec<f64> = outcomes.iter().map(|o| o.longest_outage.value()).collect();
    let stranded: Vec<f64> = outcomes.iter().map(|o| o.energy_stranded.value()).collect();
    let mean_of = |values: Vec<f64>| -> Option<Seconds> {
        if values.is_empty() {
            None
        } else {
            Some(Seconds::new(
                values.iter().sum::<f64>() / values.len() as f64,
            ))
        }
    };
    let detects: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.time_to_detect.map(|t| t.value()))
        .collect();
    let recovers: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.time_to_recover.map(|t| t.value()))
        .collect();
    CampaignSummary {
        seeds: seeds.to_vec(),
        uptime: Spread::of(&uptimes),
        longest_outage_s: Spread::of(&outages),
        stranded_j: Spread::of(&stranded),
        mean_time_to_detect: mean_of(detects),
        mean_time_to_recover: mean_of(recovers),
        total_faults: outcomes.iter().map(|o| o.faults_fired).sum(),
        total_clears: outcomes.iter().map(|o| o.faults_cleared).sum(),
        total_failovers: outcomes.iter().map(|o| o.failovers).sum(),
        total_recoveries: outcomes.iter().map(|o| o.recoveries).sum(),
        worst_audit_relative: outcomes
            .iter()
            .map(|o| o.audit.worst_relative)
            .fold(0.0, f64::max),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::IntermittentStorage;
    use mseh_core::{PortRequirement, PowerUnit, StoreRole};
    use mseh_power::DcDcConverter;
    use mseh_storage::Supercap;
    use mseh_units::{DutyCycle, Volts};

    fn unit_with_fault(schedule: FaultSchedule) -> PowerUnit {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(2.5));
        let mut unit = PowerUnit::builder("campaign test")
            .store_port(
                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(cap)),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
            .build();
        assert!(unit.instrument_store(0, |inner| {
            Box::new(IntermittentStorage::new(inner, schedule))
        }));
        unit
    }

    fn scenario(seed: u64) -> FaultScenario<PowerUnit> {
        let schedule = FaultSchedule::stochastic(
            seed,
            Seconds::from_hours(1.5),
            Seconds::from_minutes(40.0),
            Seconds::from_hours(6.0),
        );
        FaultScenario::new(
            unit_with_fault(schedule.clone()),
            Environment::indoor_office(seed),
            Box::new(mseh_node::FixedDuty::new(DutyCycle::saturating(0.05))),
            schedule,
        )
    }

    #[test]
    fn campaign_reports_faults_and_stays_conserved() {
        let summary = run_resilience_campaign_with_threads(
            1,
            &[7, 8, 9],
            scenario,
            &SensorNode::submilliwatt_class(),
            CampaignConfig::over(Seconds::from_hours(6.0)),
        );
        assert_eq!(summary.outcomes.len(), 3);
        assert!(summary.total_faults > 0, "{summary:?}");
        assert!(summary.worst_audit_relative < 1e-6, "{summary:?}");
        // Detection happens at the window edge after the injected time.
        let detect = summary.mean_time_to_detect.expect("faults detected");
        assert!(detect.value() >= 0.0);
        for outcome in &summary.outcomes {
            assert!(outcome.uptime >= 0.0 && outcome.uptime <= 1.0);
            assert_eq!(
                outcome.faults_fired,
                outcome.faults_cleared + u64::from(outcome.faults_fired > outcome.faults_cleared)
            );
        }
    }

    #[test]
    fn recovery_hook_runs_between_segments() {
        let mut summary_recoveries = 0;
        // A hook that always claims a repair: one call per interior
        // segment boundary.
        let summary = run_resilience_campaign_with_threads(
            1,
            &[3],
            |seed| scenario(seed).with_recovery(|_unit, _now| true),
            &SensorNode::submilliwatt_class(),
            CampaignConfig::over(Seconds::from_hours(3.0))
                .with_check_interval(Seconds::from_hours(1.0)),
        );
        summary_recoveries += summary.total_recoveries;
        assert_eq!(summary_recoveries, 2);
    }

    #[test]
    fn cancellable_campaign_matches_plain_and_honours_the_token() {
        let node = SensorNode::submilliwatt_class();
        let config = CampaignConfig::over(Seconds::from_hours(3.0));
        let plain = run_resilience_campaign_with_threads(1, &[7, 8], scenario, &node, config);
        let token = CancelToken::new();
        let same =
            run_resilience_campaign_cancellable(1, &[7, 8], scenario, &node, config, &token, None)
                .expect("valid config")
                .expect("token never tripped");
        assert_eq!(plain, same);

        token.cancel();
        let cancelled =
            run_resilience_campaign_cancellable(1, &[7, 8], scenario, &node, config, &token, None)
                .expect("valid config");
        assert!(cancelled.is_none());

        let empty = run_resilience_campaign_cancellable(
            1,
            &[],
            scenario,
            &node,
            config,
            &CancelToken::new(),
            None,
        );
        assert!(empty.is_err());
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_list() {
        run_resilience_campaign_with_threads(
            1,
            &[],
            scenario,
            &SensorNode::submilliwatt_class(),
            CampaignConfig::over(Seconds::from_hours(1.0)),
        );
    }
}
