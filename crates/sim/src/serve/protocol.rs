//! The `mseh serve` line protocol: newline-delimited requests and
//! replies in the `key=value;` wire idiom of
//! [`mseh_core::ElectronicDatasheet::to_wire`].
//!
//! # Grammar
//!
//! ```text
//! request  = verb [" " fields] "\n"
//! fields   = field *(";" field) [";"]
//! field    = key "=" value            ; no ';', '=', '\n' in key/value
//! reply    = ("ok" / "err" / "event" / "done") [" " fields] "\n"
//! ```
//!
//! Verbs: `ping`, `submit`, `status`, `cancel`, `result`, `subscribe`,
//! `shutdown`. Every request gets exactly one reply line, except
//! `subscribe`, which streams `event` lines followed by one `done`
//! line before the connection returns to request mode.

use std::fmt::Write as _;

/// One parsed request line: the verb and its `key=value` fields in
/// wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The leading verb token.
    pub verb: String,
    /// `key=value` pairs, in the order they appeared on the wire.
    pub fields: Vec<(String, String)>,
}

impl Request {
    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one wire line into a [`Request`]. Empty and all-whitespace
/// lines are reported as `Ok(None)` (clients may keep-alive with bare
/// newlines).
pub fn parse_line(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(' ') {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    if verb.is_empty() || !verb.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("malformed verb {verb:?}"));
    }
    let fields = parse_fields(rest)?;
    Ok(Some(Request {
        verb: verb.to_string(),
        fields,
    }))
}

/// Parses a `key=value;key=value` tail (trailing `;` tolerated, as in
/// `to_wire` output).
pub fn parse_fields(rest: &str) -> Result<Vec<(String, String)>, String> {
    let mut fields = Vec::new();
    for part in rest.split(';') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("field {part:?} is not key=value"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("field {part:?} has a malformed key"));
        }
        fields.push((key.to_string(), value.trim().to_string()));
    }
    Ok(fields)
}

/// Formats a reply line: `head` followed by `key=value;` fields.
/// Values are sanitized so they can never break the line framing.
pub fn format_line(head: &str, fields: &[(&str, String)]) -> String {
    let mut line = String::from(head);
    for (i, (key, value)) in fields.iter().enumerate() {
        line.push(if i == 0 { ' ' } else { ';' });
        let _ = write!(line, "{key}={}", sanitize(value));
    }
    line
}

/// Replaces characters that would break wire framing (`;`, `=`, line
/// breaks) with spaces — used on free-text values such as error
/// messages.
pub fn sanitize(value: &str) -> String {
    value
        .chars()
        .map(|c| match c {
            ';' | '=' | '\n' | '\r' => ' ',
            c => c,
        })
        .collect()
}

/// 64-bit FNV-1a over `bytes` — the protocol's hash for spec hashes
/// and summary digests (stable, dependency-free, endian-independent).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Incremental [`fnv1a64`] builder for bit-exact summary digests:
/// floats enter as their IEEE-754 bit patterns, so two digests agree
/// iff the summarized values are bit-identical.
#[derive(Debug, Clone)]
pub struct Digest {
    hash: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest (FNV offset basis).
    pub fn new() -> Self {
        Self {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a float in as its exact bit pattern.
    pub fn f64(self, value: f64) -> Self {
        self.bytes(&value.to_bits().to_le_bytes())
    }

    /// Folds an integer in.
    pub fn u64(self, value: u64) -> Self {
        self.bytes(&value.to_le_bytes())
    }

    /// Folds a string in (length-prefixed so field boundaries can't
    /// alias).
    pub fn str(self, value: &str) -> Self {
        self.bytes(&(value.len() as u64).to_le_bytes())
            .bytes(value.as_bytes())
    }

    /// The final 64-bit digest.
    pub fn finish(self) -> u64 {
        self.hash
    }
}

/// The normalized spec string a job's `spec_hash` covers: the kind,
/// then every field sorted by key — so field order on the wire never
/// changes the hash, while any value change does.
pub fn normalize_spec(kind: &str, fields: &[(String, String)]) -> String {
    let mut sorted: Vec<&(String, String)> = fields.iter().collect();
    sorted.sort();
    let mut out = format!("kind={kind}");
    for (key, value) in sorted {
        let _ = write!(out, ";{key}={value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_verb_and_fields_in_order() {
        let req = parse_line("submit kind=single;seed=42;days=2")
            .unwrap()
            .unwrap();
        assert_eq!(req.verb, "submit");
        assert_eq!(req.get("kind"), Some("single"));
        assert_eq!(req.get("seed"), Some("42"));
        assert_eq!(req.fields.len(), 3);
    }

    #[test]
    fn tolerates_blank_lines_and_trailing_semicolons() {
        assert_eq!(parse_line("  \r").unwrap(), None);
        let req = parse_line("status id=job-1;").unwrap().unwrap();
        assert_eq!(req.fields.len(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_line("submit kind").is_err());
        assert!(parse_line("submit =x").is_err());
        assert!(parse_line("su bmit! a=b").is_err());
    }

    #[test]
    fn round_trips_through_format() {
        let line = format_line("ok", &[("id", "job-1".into()), ("state", "queued".into())]);
        assert_eq!(line, "ok id=job-1;state=queued");
        let req = parse_line(&line).unwrap().unwrap();
        assert_eq!(req.verb, "ok");
        assert_eq!(req.get("state"), Some("queued"));
    }

    #[test]
    fn sanitize_keeps_framing_intact() {
        let line = format_line("err", &[("msg", "bad;thing=1\nboom".into())]);
        let req = parse_line(&line).unwrap().unwrap();
        assert_eq!(req.get("msg"), Some("bad thing 1 boom"));
    }

    #[test]
    fn spec_hash_is_order_insensitive_but_value_sensitive() {
        let a = [
            ("seed".to_string(), "1".to_string()),
            ("days".into(), "2".into()),
        ];
        let b = [
            ("days".to_string(), "2".to_string()),
            ("seed".into(), "1".into()),
        ];
        let c = [
            ("days".to_string(), "3".to_string()),
            ("seed".into(), "1".into()),
        ];
        assert_eq!(
            fnv1a64(normalize_spec("single", &a).as_bytes()),
            fnv1a64(normalize_spec("single", &b).as_bytes())
        );
        assert_ne!(
            fnv1a64(normalize_spec("single", &a).as_bytes()),
            fnv1a64(normalize_spec("single", &c).as_bytes())
        );
    }

    #[test]
    fn digest_tracks_bit_identity() {
        let d1 = Digest::new().f64(1.5).u64(7).str("x").finish();
        let d2 = Digest::new().f64(1.5).u64(7).str("x").finish();
        let d3 = Digest::new()
            .f64(1.5 + f64::EPSILON)
            .u64(7)
            .str("x")
            .finish();
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }
}
