//! The `mseh serve` daemon: a long-running TCP service that queues,
//! runs, cancels, and streams simulation jobs.
//!
//! The service is generic over a [`JobRunner`]: the binary crate
//! supplies one that knows the reference-system catalog, while this
//! module owns everything protocol- and lifecycle-shaped — the
//! newline-delimited `key=value;` wire grammar ([`protocol`]), the
//! bounded job queue with explicit backpressure, per-job cancellation
//! tokens, and window-batched event streaming to subscribers.
//!
//! # Lifecycle
//!
//! ```text
//! submit ──▶ queued ──▶ running ──▶ done
//!               │           │   └──▶ failed   (run error / panic)
//!               └──────────▶└──────▶ cancelled
//! ```
//!
//! A full queue rejects `submit` with `err code=queue_full;
//! retry_after_ms=…` — jobs are never silently dropped and the
//! connection never hangs. `cancel` trips the job's [`CancelToken`];
//! every kernel loop checks it once per control window, so a running
//! fleet job stops within one window of compute per in-flight node.
//! Each finished job carries a determinism receipt (`seed`,
//! `spec_hash`, `digest`): re-submitting the same spec must reproduce
//! the same digest bit for bit.

pub mod protocol;
mod queue;
mod registry;
mod session;

pub use registry::JobState;

use crate::cancel::CancelToken;
use protocol::{fnv1a64, normalize_spec};
use registry::Shared;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed job submission: the job kind (`single`, `campaign`,
/// `fleet`, …) and its declarative `key=value` spec fields in wire
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The `kind=` field of the `submit` line.
    pub kind: String,
    /// Every other spec field, in wire order.
    pub fields: Vec<(String, String)>,
}

impl JobSpec {
    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The 64-bit FNV-1a hash of the normalized spec (kind plus fields
    /// sorted by key) — the `spec_hash` of the job's determinism
    /// receipt.
    pub fn spec_hash(&self) -> u64 {
        fnv1a64(normalize_spec(&self.kind, &self.fields).as_bytes())
    }
}

/// What a finished job reports: a bit-exact summary digest (see
/// [`protocol::Digest`]) and flat `key=value` summary fields for the
/// `done`/`result` reply lines.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// FNV-1a digest over the summary's raw values; two runs of the
    /// same spec must produce equal digests.
    pub digest: u64,
    /// Summary fields appended to the `done` and `result` replies.
    pub fields: Vec<(String, String)>,
}

/// The closure a prepared job runs on a worker thread. `Ok(None)`
/// means the run observed its cancellation token and stopped.
pub type JobRun = Box<dyn FnOnce(&JobContext) -> Result<Option<JobOutput>, String> + Send>;

/// A validated job, ready to queue: its determinism seed and the run
/// closure.
pub struct PreparedJob {
    /// The seed recorded in the job's determinism receipt.
    pub seed: u64,
    /// The work itself, executed on a worker thread.
    pub run: JobRun,
}

impl std::fmt::Debug for PreparedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedJob")
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// Turns declarative job specs into runnable work. Implementations
/// must validate eagerly: a malformed spec returns `Err` from
/// [`JobRunner::prepare`] (becoming a protocol error reply) and must
/// never panic the daemon.
pub trait JobRunner: Send + Sync {
    /// Validates `spec` and returns the prepared job, or a
    /// human-readable error for the `err code=bad_spec` reply.
    fn prepare(&self, spec: &JobSpec) -> Result<PreparedJob, String>;
}

/// Handed to a running job: its cancellation token and the event
/// stream back to subscribers.
pub struct JobContext {
    pub(crate) id: String,
    pub(crate) cancel: CancelToken,
    pub(crate) shared: Arc<Shared>,
}

impl JobContext {
    /// The job's wire id (`job-N`).
    pub fn job_id(&self) -> &str {
        &self.id
    }

    /// The job's cancellation token, for threading into
    /// `run_simulation_cancellable` / `run_fleet_controlled` /
    /// `run_resilience_campaign_cancellable`.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Emits one `event` line to the job's subscribers (buffered for
    /// late subscribers). Emit at window-batched cadence, not per
    /// step.
    pub fn emit(&self, fields: &[(&str, String)]) {
        self.shared.append_event(&self.id, fields);
    }
}

impl std::fmt::Debug for JobContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobContext")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

/// A queued run: the closure plus the token `cancel`/shutdown trips.
pub(crate) struct StoredRun {
    pub(crate) run: JobRun,
    pub(crate) cancel: CancelToken,
}

/// Daemon sizing: queue bound, worker count, and the backpressure
/// retry hint.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Maximum queued (not yet running) jobs; a full queue rejects
    /// `submit` with `err code=queue_full`.
    pub queue_capacity: usize,
    /// Worker threads draining the queue. Each job may itself fan out
    /// over the `par_map` pool, so a small number is usually right.
    pub workers: usize,
    /// The `retry_after_ms` hint in backpressure replies.
    pub retry_after_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 8,
            workers: 2,
            retry_after_ms: 250,
        }
    }
}

/// A running daemon: its bound address and the threads to join on
/// shutdown.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves `:0` requests).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins shutdown: stops accepting, cancels queued jobs, trips
    /// running jobs' tokens. Idempotent; does not block.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has begun (via [`ServerHandle::shutdown`] or
    /// the wire `shutdown` verb).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// Blocks until the daemon has fully stopped: the accept loop,
    /// every worker, and every client session have exited. Call after
    /// [`ServerHandle::shutdown`] (or after a client sent the wire
    /// `shutdown` verb) — waiting on a live daemon blocks until one
    /// arrives.
    pub fn wait(mut self) {
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let sessions =
            std::mem::take(&mut *self.sessions.lock().unwrap_or_else(|e| e.into_inner()));
        for session in sessions {
            let _ = session.join();
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::wait`].
    pub fn shutdown_and_wait(self) {
        self.shutdown();
        self.wait();
    }
}

/// Starts the daemon on `addr` (use port 0 for an ephemeral port) and
/// returns immediately; jobs are validated by `runner`. All threads —
/// the accept loop, `config.workers` queue workers, and one thread per
/// client connection — are owned by the returned handle.
pub fn serve(
    addr: &str,
    runner: Arc<dyn JobRunner>,
    config: ServeConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared::new(config.queue_capacity, config.retry_after_ms));
    let workers = queue::spawn_workers(&shared, config.workers);
    let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_sessions = Arc::clone(&sessions);
    let accept = std::thread::Builder::new()
        .name("mseh-serve-accept".to_string())
        .spawn(move || {
            while !accept_shared.is_shutting_down() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nonblocking(false);
                        let shared = Arc::clone(&accept_shared);
                        let session_runner = Arc::clone(&runner);
                        let handle = std::thread::Builder::new()
                            .name("mseh-serve-session".to_string())
                            .spawn(move || {
                                session::handle_connection(stream, shared, session_runner);
                            });
                        if let Ok(handle) = handle {
                            accept_sessions
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(handle);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;

    Ok(ServerHandle {
        local_addr,
        shared,
        listener: Some(accept),
        workers,
        sessions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    /// A runner whose jobs emit one event and finish with a digest
    /// derived from the spec — enough to exercise the full lifecycle
    /// without simulation plumbing.
    struct EchoRunner;

    impl JobRunner for EchoRunner {
        fn prepare(&self, spec: &JobSpec) -> Result<PreparedJob, String> {
            if spec.kind != "echo" {
                return Err(format!("unknown kind {}", spec.kind));
            }
            if spec.get("boom").is_some() {
                return Err("boom rejected at prepare".into());
            }
            let seed: u64 = spec
                .get("seed")
                .unwrap_or("0")
                .parse()
                .map_err(|_| "seed must be an integer".to_string())?;
            let wait = spec.get("wait").is_some();
            let panic_in_run = spec.get("panic").is_some();
            let hash = spec.spec_hash();
            Ok(PreparedJob {
                seed,
                run: Box::new(move |ctx| {
                    if panic_in_run {
                        panic!("intentional test panic");
                    }
                    ctx.emit(&[("phase", "started".into())]);
                    while wait && !ctx.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    if ctx.is_cancelled() {
                        return Ok(None);
                    }
                    Ok(Some(JobOutput {
                        digest: hash,
                        fields: vec![("echo_seed".into(), seed.to_string())],
                    }))
                }),
            })
        }
    }

    struct Client {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Self {
            let stream = TcpStream::connect(addr).expect("connect");
            let reader = BufReader::new(stream.try_clone().expect("clone"));
            Self {
                reader,
                writer: stream,
            }
        }

        fn send(&mut self, line: &str) {
            self.writer
                .write_all(format!("{line}\n").as_bytes())
                .expect("write");
        }

        fn recv(&mut self) -> String {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read");
            line.trim_end().to_string()
        }

        fn roundtrip(&mut self, line: &str) -> String {
            self.send(line);
            self.recv()
        }
    }

    fn start() -> (ServerHandle, Client) {
        let handle = serve(
            "127.0.0.1:0",
            Arc::new(EchoRunner),
            ServeConfig {
                queue_capacity: 2,
                workers: 1,
                retry_after_ms: 99,
            },
        )
        .expect("bind");
        let client = Client::connect(handle.addr());
        (handle, client)
    }

    #[test]
    fn ping_and_unknown_verbs() {
        let (handle, mut client) = start();
        assert_eq!(client.roundtrip("ping"), "ok pong=1");
        assert!(client
            .roundtrip("frobnicate x=1")
            .starts_with("err code=unknown_verb"));
        assert!(client
            .roundtrip("submit kind")
            .starts_with("err code=bad_request"));
        handle.shutdown_and_wait();
    }

    #[test]
    fn submit_runs_to_done_with_receipt() {
        let (handle, mut client) = start();
        let reply = client.roundtrip("submit kind=echo;seed=42");
        assert!(reply.starts_with("ok id=job-"), "{reply}");
        let req = parse_reply(&reply);
        let id = req.get("id").unwrap().to_string();
        let spec_hash = req.get("spec_hash").unwrap().to_string();

        let result = wait_done(&mut client, &id);
        let fields = parse_reply(&result);
        assert_eq!(fields.get("state"), Some("done"));
        assert_eq!(fields.get("seed"), Some("42"));
        assert_eq!(fields.get("spec_hash"), Some(spec_hash.as_str()));
        assert_eq!(fields.get("echo_seed"), Some("42"));
        assert!(fields.get("digest").is_some());
        handle.shutdown_and_wait();
    }

    #[test]
    fn bad_specs_get_protocol_errors_and_daemon_survives() {
        let (handle, mut client) = start();
        assert!(client
            .roundtrip("submit kind=mystery")
            .starts_with("err code=bad_spec"));
        assert!(client
            .roundtrip("submit kind=echo;boom=1")
            .starts_with("err code=bad_spec"));
        assert!(client
            .roundtrip("submit kind=echo;seed=notanumber")
            .starts_with("err code=bad_spec"));
        // A job that panics mid-run becomes `failed`, not a dead daemon.
        let reply = client.roundtrip("submit kind=echo;panic=1");
        let id = parse_reply(&reply).get("id").unwrap().to_string();
        let mut state = String::new();
        for _ in 0..200 {
            state = client.roundtrip(&format!("result id={id}"));
            if !state.contains("not_finished") {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(state.starts_with("err code=job_failed"), "{state}");
        // Daemon still alive and serving.
        assert_eq!(client.roundtrip("ping"), "ok pong=1");
        handle.shutdown_and_wait();
    }

    #[test]
    fn full_queue_replies_with_backpressure() {
        let (handle, mut client) = start();
        // One long job occupies the single worker; two more fill the
        // bounded queue; the fourth must bounce with retry-after.
        let blocker = parse_reply(&client.roundtrip("submit kind=echo;wait=1"))
            .get("id")
            .unwrap()
            .to_string();
        wait_for_state(&mut client, &blocker, "running");
        let q1 = client.roundtrip("submit kind=echo;seed=1;wait=1");
        let q2 = client.roundtrip("submit kind=echo;seed=2;wait=1");
        assert!(q1.starts_with("ok "), "{q1}");
        assert!(q2.starts_with("ok "), "{q2}");
        let bounced = client.roundtrip("submit kind=echo;seed=3");
        assert_eq!(bounced, "err code=queue_full;retry_after_ms=99");
        // Cancel everything so shutdown is quick.
        for req in [&blocker, &parse_id(&q1), &parse_id(&q2)] {
            client.send(&format!("cancel id={req}"));
            client.recv();
        }
        handle.shutdown_and_wait();
    }

    #[test]
    fn cancel_stops_a_running_job_and_frees_the_worker() {
        let (handle, mut client) = start();
        let id = parse_id(&client.roundtrip("submit kind=echo;wait=1"));
        wait_for_state(&mut client, &id, "running");
        let reply = client.roundtrip(&format!("cancel id={id}"));
        assert_eq!(reply, format!("ok id={id};state=cancelling"));
        wait_for_state(&mut client, &id, "cancelled");
        // Worker is reusable: a fresh job completes.
        let next = parse_id(&client.roundtrip("submit kind=echo;seed=9"));
        let done = wait_done(&mut client, &next);
        assert!(done.contains("state=done"), "{done}");
        handle.shutdown_and_wait();
    }

    #[test]
    fn subscribe_streams_events_then_done() {
        let (handle, mut client) = start();
        let id = parse_id(&client.roundtrip("submit kind=echo;seed=7"));
        let ack = client.roundtrip(&format!("subscribe id={id}"));
        assert_eq!(ack, format!("ok id={id};subscribed=1"));
        let mut saw_event = false;
        loop {
            let line = client.recv();
            if line.starts_with("event ") {
                saw_event = true;
                assert!(line.contains("phase=started"), "{line}");
            } else if line.starts_with("done ") {
                assert!(line.contains("state=done"), "{line}");
                break;
            } else {
                panic!("unexpected stream line {line}");
            }
        }
        assert!(saw_event);
        // Connection is back in request mode after the stream.
        assert_eq!(client.roundtrip("ping"), "ok pong=1");
        handle.shutdown_and_wait();
    }

    #[test]
    fn wire_shutdown_cancels_live_jobs_and_exits_cleanly() {
        let (handle, mut client) = start();
        let id = parse_id(&client.roundtrip("submit kind=echo;wait=1"));
        wait_for_state(&mut client, &id, "running");
        assert_eq!(client.roundtrip("shutdown"), "ok state=shutting_down");
        handle.wait();
    }

    fn parse_reply(line: &str) -> super::protocol::Request {
        super::protocol::parse_line(line).unwrap().unwrap()
    }

    fn parse_id(reply: &str) -> String {
        parse_reply(reply).get("id").expect("id field").to_string()
    }

    fn wait_for_state(client: &mut Client, id: &str, want: &str) {
        for _ in 0..400 {
            let reply = client.roundtrip(&format!("status id={id}"));
            if parse_reply(&reply).get("state") == Some(want) {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never reached state {want}");
    }

    fn wait_done(client: &mut Client, id: &str) -> String {
        for _ in 0..400 {
            let reply = client.roundtrip(&format!("result id={id}"));
            if !reply.contains("code=not_finished") {
                return reply;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never finished");
    }
}
