//! Per-connection request loop: parses wire lines, dispatches verbs,
//! and — for `subscribe` — switches the connection into streaming mode
//! until the job's `done` line has been delivered.

use super::protocol::{format_line, parse_line, Request};
use super::registry::{Shared, StreamMsg, SubmitError};
use super::{JobRunner, JobSpec, StoredRun};
use crate::cancel::CancelToken;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Longest accepted request line; a client exceeding it is dropped.
const MAX_LINE: usize = 64 * 1024;
/// Read poll granularity — how often an idle session re-checks the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Buffered line reader that survives read timeouts without losing
/// partial lines (a timeout mid-line keeps the bytes buffered).
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn next_line(&mut self, shared: &Shared) -> Option<String> {
        loop {
            if let Some(i) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=i).collect();
                return Some(String::from_utf8_lossy(&line).into_owned());
            }
            if self.buf.len() > MAX_LINE {
                return None;
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return None,
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shared.is_shutting_down() {
                        return None;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return None,
            }
        }
    }
}

fn send(stream: &mut TcpStream, line: &str) -> bool {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush())
        .is_ok()
}

fn send_err(stream: &mut TcpStream, code: &str, msg: &str) -> bool {
    send(
        stream,
        &format_line(
            "err",
            &[("code", code.to_string()), ("msg", msg.to_string())],
        ),
    )
}

/// Runs one client connection to completion. All I/O errors simply end
/// the session; daemon state is owned elsewhere.
pub(crate) fn handle_connection(
    stream: TcpStream,
    shared: Arc<Shared>,
    runner: Arc<dyn JobRunner>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        buf: Vec::new(),
    };

    while let Some(raw) = reader.next_line(&shared) {
        let request = match parse_line(&raw) {
            Ok(Some(request)) => request,
            Ok(None) => continue,
            Err(msg) => {
                if send_err(&mut writer, "bad_request", &msg) {
                    continue;
                }
                return;
            }
        };
        let keep_going = match request.verb.as_str() {
            "ping" => send(&mut writer, &format_line("ok", &[("pong", "1".into())])),
            "submit" => handle_submit(&mut writer, &shared, runner.as_ref(), &request),
            "status" => handle_status(&mut writer, &shared, &request),
            "cancel" => handle_cancel(&mut writer, &shared, &request),
            "result" => handle_result(&mut writer, &shared, &request),
            "subscribe" => handle_subscribe(&mut writer, &shared, &request),
            "shutdown" => {
                let ok = send(
                    &mut writer,
                    &format_line("ok", &[("state", "shutting_down".into())]),
                );
                shared.begin_shutdown();
                ok
            }
            verb => send_err(&mut writer, "unknown_verb", &format!("unknown verb {verb}")),
        };
        if !keep_going {
            return;
        }
    }
}

fn job_id(request: &Request) -> Result<&str, String> {
    request
        .get("id")
        .ok_or_else(|| "missing id field".to_string())
}

fn handle_submit(
    writer: &mut TcpStream,
    shared: &Shared,
    runner: &dyn JobRunner,
    request: &Request,
) -> bool {
    let Some(kind) = request.get("kind") else {
        return send_err(writer, "bad_spec", "missing kind field");
    };
    let spec = JobSpec {
        kind: kind.to_string(),
        fields: request
            .fields
            .iter()
            .filter(|(k, _)| k != "kind")
            .cloned()
            .collect(),
    };
    let prepared = match runner.prepare(&spec) {
        Ok(prepared) => prepared,
        Err(msg) => return send_err(writer, "bad_spec", &msg),
    };
    let spec_hash = spec.spec_hash();
    let stored = StoredRun {
        run: prepared.run,
        cancel: CancelToken::new(),
    };
    match shared.submit(prepared.seed, spec_hash, stored) {
        Ok(id) => send(
            writer,
            &format_line(
                "ok",
                &[
                    ("id", id),
                    ("state", "queued".into()),
                    ("spec_hash", format!("{spec_hash:016x}")),
                ],
            ),
        ),
        Err(SubmitError::Full { retry_after_ms }) => send(
            writer,
            &format_line(
                "err",
                &[
                    ("code", "queue_full".into()),
                    ("retry_after_ms", retry_after_ms.to_string()),
                ],
            ),
        ),
        Err(SubmitError::ShuttingDown) => {
            send_err(writer, "shutting_down", "daemon is shutting down")
        }
    }
}

fn handle_status(writer: &mut TcpStream, shared: &Shared, request: &Request) -> bool {
    let id = match job_id(request) {
        Ok(id) => id,
        Err(msg) => return send_err(writer, "bad_request", &msg),
    };
    match shared.status(id) {
        Ok(snapshot) => send(
            writer,
            &format_line(
                "ok",
                &[
                    ("id", id.to_string()),
                    ("state", snapshot.state.as_wire().into()),
                    ("queued", snapshot.queued.to_string()),
                    ("running", snapshot.running.to_string()),
                ],
            ),
        ),
        Err(msg) => send_err(writer, "unknown_job", &msg),
    }
}

fn handle_cancel(writer: &mut TcpStream, shared: &Shared, request: &Request) -> bool {
    let id = match job_id(request) {
        Ok(id) => id,
        Err(msg) => return send_err(writer, "bad_request", &msg),
    };
    match shared.cancel(id) {
        Ok(state) => {
            let wire = if state.is_terminal() {
                state.as_wire()
            } else {
                // Token tripped; the worker confirms within one
                // control window.
                "cancelling"
            };
            send(
                writer,
                &format_line("ok", &[("id", id.to_string()), ("state", wire.into())]),
            )
        }
        Err(msg) => send_err(writer, "unknown_job", &msg),
    }
}

fn handle_result(writer: &mut TcpStream, shared: &Shared, request: &Request) -> bool {
    let id = match job_id(request) {
        Ok(id) => id,
        Err(msg) => return send_err(writer, "bad_request", &msg),
    };
    match shared.result(id) {
        Ok(snapshot) => match snapshot.state {
            super::JobState::Done => {
                let fields = snapshot
                    .final_fields
                    .expect("done job stores result fields");
                let borrowed: Vec<(&str, String)> = fields
                    .iter()
                    .map(|(k, v)| (k.as_str(), v.clone()))
                    .collect();
                send(writer, &format_line("ok", &borrowed))
            }
            super::JobState::Failed => send_err(
                writer,
                "job_failed",
                snapshot.error.as_deref().unwrap_or("job failed"),
            ),
            super::JobState::Cancelled => send_err(writer, "job_cancelled", "job was cancelled"),
            state => send(
                writer,
                &format_line(
                    "err",
                    &[
                        ("code", "not_finished".into()),
                        ("state", state.as_wire().into()),
                    ],
                ),
            ),
        },
        Err(msg) => send_err(writer, "unknown_job", &msg),
    }
}

fn handle_subscribe(writer: &mut TcpStream, shared: &Shared, request: &Request) -> bool {
    let id = match job_id(request) {
        Ok(id) => id,
        Err(msg) => return send_err(writer, "bad_request", &msg),
    };
    let (tx, rx) = mpsc::channel();
    let (backlog, terminal) = match shared.subscribe(id, tx) {
        Ok(sub) => sub,
        Err(msg) => return send_err(writer, "unknown_job", &msg),
    };
    if !send(
        writer,
        &format_line("ok", &[("id", id.to_string()), ("subscribed", "1".into())]),
    ) {
        return false;
    }
    for line in &backlog {
        if !send(writer, line) {
            return false;
        }
    }
    if terminal {
        // The buffered `done` line was part of the backlog; the
        // connection drops straight back to request mode.
        return true;
    }
    loop {
        match rx.recv_timeout(READ_POLL) {
            Ok(StreamMsg::Line(line)) => {
                if !send(writer, &line) {
                    return false;
                }
            }
            Ok(StreamMsg::Done) => return true,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Shutdown cancels every live job, so Done is coming;
                // keep draining until it arrives.
                continue;
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return true,
        }
    }
}
