//! The daemon's worker pool: a fixed set of threads draining the
//! bounded queue in [`super::registry::Shared`]. A panicking job is
//! caught and recorded as `failed` — it never takes a worker (or the
//! daemon) down.

use super::registry::{Outcome, Shared};
use super::JobContext;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Spawns `workers` queue-draining threads. Each exits when the queue
/// is empty and shutdown has begun.
pub(crate) fn spawn_workers(shared: &Arc<Shared>, workers: usize) -> Vec<JoinHandle<()>> {
    (0..workers.max(1))
        .map(|i| {
            let shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name(format!("mseh-serve-worker-{i}"))
                .spawn(move || run_worker(&shared))
                .expect("spawn serve worker")
        })
        .collect()
}

fn run_worker(shared: &Arc<Shared>) {
    while let Some((id, stored)) = shared.claim() {
        let ctx = JobContext {
            id: id.clone(),
            cancel: stored.cancel.clone(),
            shared: Arc::clone(shared),
        };
        let outcome = match catch_unwind(AssertUnwindSafe(|| (stored.run)(&ctx))) {
            Ok(Ok(Some(output))) => Outcome::Done(output),
            Ok(Ok(None)) => Outcome::Cancelled,
            Ok(Err(message)) => Outcome::Failed(message),
            Err(panic) => Outcome::Failed(panic_text(&panic)),
        };
        shared.complete(&id, outcome);
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("job panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("job panicked: {s}")
    } else {
        "job panicked".to_string()
    }
}
