//! Shared daemon state: the bounded job queue, per-job records with
//! buffered event lines, subscriber channels, and lifecycle
//! transitions. One mutex guards the whole state; workers park on a
//! condvar when the queue is empty.

use super::protocol::format_line;
use super::{JobOutput, StoredRun};
use crate::cancel::CancelToken;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished; summary and receipt are available via `result`.
    Done,
    /// Stopped by `cancel` before completion.
    Cancelled,
    /// The run reported an error (or panicked); see the stored message.
    Failed,
}

impl JobState {
    /// The wire spelling of this state.
    pub fn as_wire(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// A message on a subscriber's channel.
pub(crate) enum StreamMsg {
    /// One buffered/live wire line (`event …` or `done …`).
    Line(String),
    /// The job reached a terminal state; no further lines follow.
    Done,
}

/// Why a submission was turned away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The bounded queue is at capacity; retry after the hinted delay.
    Full {
        /// Client-facing retry hint, milliseconds.
        retry_after_ms: u64,
    },
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
}

struct JobRecord {
    state: JobState,
    seed: u64,
    spec_hash: u64,
    cancel: CancelToken,
    /// Buffered `event`/`done` lines in emission order, replayed to
    /// late subscribers before live delivery.
    lines: Vec<String>,
    subscribers: Vec<mpsc::Sender<StreamMsg>>,
    /// Fields of the final reply (`result` verb), set on completion.
    final_fields: Option<Vec<(String, String)>>,
    error: Option<String>,
}

/// Point-in-time view of one job plus queue occupancy, for `status`
/// replies.
pub(crate) struct StatusSnapshot {
    pub state: JobState,
    pub queued: usize,
    pub running: usize,
}

/// Point-in-time view of a job's terminal output, for `result`
/// replies.
pub(crate) struct ResultSnapshot {
    pub state: JobState,
    pub final_fields: Option<Vec<(String, String)>>,
    pub error: Option<String>,
}

struct Inner {
    queue: VecDeque<String>,
    runs: HashMap<String, StoredRun>,
    jobs: HashMap<String, JobRecord>,
    next_id: u64,
    running: usize,
    shutdown: bool,
}

/// The daemon's shared state: one mutex, one worker-wakeup condvar.
pub(crate) struct Shared {
    capacity: usize,
    retry_after_ms: u64,
    inner: Mutex<Inner>,
    work: Condvar,
}

/// How a worker finished a job.
pub(crate) enum Outcome {
    Done(JobOutput),
    Cancelled,
    Failed(String),
}

impl Shared {
    pub(crate) fn new(capacity: usize, retry_after_ms: u64) -> Self {
        Self {
            capacity: capacity.max(1),
            retry_after_ms,
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                runs: HashMap::new(),
                jobs: HashMap::new(),
                next_id: 1,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a prepared run; errors when full or shutting down.
    pub(crate) fn submit(
        &self,
        seed: u64,
        spec_hash: u64,
        run: StoredRun,
    ) -> Result<String, SubmitError> {
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.queue.len() >= self.capacity {
            return Err(SubmitError::Full {
                retry_after_ms: self.retry_after_ms,
            });
        }
        let id = format!("job-{}", inner.next_id);
        inner.next_id += 1;
        inner.jobs.insert(
            id.clone(),
            JobRecord {
                state: JobState::Queued,
                seed,
                spec_hash,
                cancel: run.cancel.clone(),
                lines: Vec::new(),
                subscribers: Vec::new(),
                final_fields: None,
                error: None,
            },
        );
        inner.runs.insert(id.clone(), run);
        inner.queue.push_back(id.clone());
        self.work.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available or shutdown; `None` means the
    /// worker should exit.
    pub(crate) fn claim(&self) -> Option<(String, StoredRun)> {
        let mut inner = self.lock();
        loop {
            if let Some(id) = inner.queue.pop_front() {
                let run = inner.runs.remove(&id).expect("queued job has a run");
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.state = JobState::Running;
                }
                inner.running += 1;
                return Some((id, run));
            }
            if inner.shutdown {
                return None;
            }
            inner = self.work.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn push_line(job: &mut JobRecord, line: String) {
        job.subscribers
            .retain(|tx| tx.send(StreamMsg::Line(line.clone())).is_ok());
        job.lines.push(line);
    }

    /// Appends a live `event` line and fans it out to subscribers.
    pub(crate) fn append_event(&self, id: &str, fields: &[(&str, String)]) {
        let mut inner = self.lock();
        if let Some(job) = inner.jobs.get_mut(id) {
            let mut all = vec![("id", id.to_string())];
            all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
            let line = format_line("event", &all);
            Self::push_line(job, line);
        }
    }

    /// Records a worker's outcome: terminal state, `done` line,
    /// subscriber completion, `result` fields.
    pub(crate) fn complete(&self, id: &str, outcome: Outcome) {
        let mut inner = self.lock();
        inner.running = inner.running.saturating_sub(1);
        if let Some(job) = inner.jobs.get_mut(id) {
            Self::finish_record(id, job, outcome);
        }
    }

    fn finish_record(id: &str, job: &mut JobRecord, outcome: Outcome) {
        let mut fields: Vec<(&str, String)> = vec![("id", id.to_string())];
        match outcome {
            Outcome::Done(output) => {
                job.state = JobState::Done;
                fields.push(("state", "done".into()));
                fields.push(("seed", job.seed.to_string()));
                fields.push(("spec_hash", format!("{:016x}", job.spec_hash)));
                fields.push(("digest", format!("{:016x}", output.digest)));
                for (k, v) in &output.fields {
                    fields.push((k.as_str(), v.clone()));
                }
                job.final_fields = Some(
                    fields
                        .iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect(),
                );
                let line = format_line("done", &fields);
                Self::push_line(job, line);
            }
            Outcome::Cancelled => {
                job.state = JobState::Cancelled;
                fields.push(("state", "cancelled".into()));
                fields.push(("seed", job.seed.to_string()));
                fields.push(("spec_hash", format!("{:016x}", job.spec_hash)));
                let line = format_line("done", &fields);
                Self::push_line(job, line);
            }
            Outcome::Failed(msg) => {
                job.state = JobState::Failed;
                fields.push(("state", "failed".into()));
                fields.push(("msg", msg.clone()));
                job.error = Some(msg);
                let line = format_line("done", &fields);
                Self::push_line(job, line);
            }
        }
        for tx in job.subscribers.drain(..) {
            let _ = tx.send(StreamMsg::Done);
        }
    }

    /// Requests cancellation. Queued jobs are cancelled on the spot;
    /// running jobs get their token tripped and finish within one
    /// control window. Returns the job's state after the request.
    pub(crate) fn cancel(&self, id: &str) -> Result<JobState, String> {
        let mut inner = self.lock();
        if !inner.jobs.contains_key(id) {
            return Err(format!("unknown job {id}"));
        }
        let queued_pos = inner.queue.iter().position(|q| q == id);
        if let Some(pos) = queued_pos {
            inner.queue.remove(pos);
            inner.runs.remove(id);
            let job = inner.jobs.get_mut(id).expect("checked above");
            Self::finish_record(id, job, Outcome::Cancelled);
            return Ok(JobState::Cancelled);
        }
        let job = inner.jobs.get_mut(id).expect("checked above");
        if !job.state.is_terminal() {
            job.cancel.cancel();
        }
        Ok(job.state)
    }

    /// Job state plus queue occupancy.
    pub(crate) fn status(&self, id: &str) -> Result<StatusSnapshot, String> {
        let inner = self.lock();
        let job = inner
            .jobs
            .get(id)
            .ok_or_else(|| format!("unknown job {id}"))?;
        Ok(StatusSnapshot {
            state: job.state,
            queued: inner.queue.len(),
            running: inner.running,
        })
    }

    /// The final `result` fields of a terminal job.
    pub(crate) fn result(&self, id: &str) -> Result<ResultSnapshot, String> {
        let inner = self.lock();
        let job = inner
            .jobs
            .get(id)
            .ok_or_else(|| format!("unknown job {id}"))?;
        Ok(ResultSnapshot {
            state: job.state,
            final_fields: job.final_fields.clone(),
            error: job.error.clone(),
        })
    }

    /// Registers a subscriber: returns the backlog of buffered lines
    /// and whether the job is already terminal (in which case `tx` was
    /// not retained and no `Done` will be sent).
    pub(crate) fn subscribe(
        &self,
        id: &str,
        tx: mpsc::Sender<StreamMsg>,
    ) -> Result<(Vec<String>, bool), String> {
        let mut inner = self.lock();
        let job = inner
            .jobs
            .get_mut(id)
            .ok_or_else(|| format!("unknown job {id}"))?;
        let backlog = job.lines.clone();
        let terminal = job.state.is_terminal();
        if !terminal {
            job.subscribers.push(tx);
        }
        Ok((backlog, terminal))
    }

    /// Flips the shutdown flag, cancels everything queued, trips every
    /// running job's token, and wakes all workers.
    pub(crate) fn begin_shutdown(&self) {
        let mut inner = self.lock();
        if inner.shutdown {
            return;
        }
        inner.shutdown = true;
        let queued: Vec<String> = inner.queue.drain(..).collect();
        inner.runs.clear();
        for id in queued {
            if let Some(job) = inner.jobs.get_mut(&id) {
                Self::finish_record(&id, job, Outcome::Cancelled);
            }
        }
        for job in inner.jobs.values_mut() {
            if !job.state.is_terminal() {
                job.cancel.cancel();
            }
        }
        self.work.notify_all();
    }

    /// Whether shutdown has begun.
    pub(crate) fn is_shutting_down(&self) -> bool {
        self.lock().shutdown
    }
}
