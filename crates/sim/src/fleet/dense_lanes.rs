//! Struct-of-arrays stepping for contiguous runs of supercap dense
//! nodes.
//!
//! A shard-local run of one [`DenseGroup`]'s members becomes a lane
//! population: voltages, losses and staged energy targets live in
//! contiguous `Vec<f64>`s ([`SupercapLanes`]) and the per-step
//! energy→voltage Newton inversions execute as masked fixed-iteration
//! passes over all lanes at once, instead of one `Storage` call per
//! node. Harvest solves batch the same way: un-jittered runs replay the
//! group-wide harvest table, jittered runs drive the group channel's
//! [`mseh_power::InputChannel::window_lanes`] once per control window
//! across every lane's jittered snapshot.
//!
//! # Bit-identity
//!
//! Every pass replicates the scalar path's exact arithmetic — same
//! operation order, same guard branches, same accumulator sequence as
//! [`simulate_node_dense`](super::simulate_node_dense) — and each
//! lane's iterates are independent of its companions, so the result is
//! bit-identical to the scalar tier *and* independent of how shards
//! split a group into runs. The fleet tests assert both.

use super::{DenseGroup, DenseSolveTier, NodeOutcome, StepPlan, NODE_SEED_STREAM};
use crate::cancel::{tripped, CancelToken};
use mseh_env::rng::Noise;
use mseh_env::{EnvConditions, JitterFactors};
use mseh_harvesters::CacheStats;
use mseh_node::EnergyStatus;
use mseh_power::{HarvestStep, PowerStage};
use mseh_storage::{Storage, Supercap, SupercapLanes};
use mseh_units::{DutyCycle, Joules, Ratio, Volts, Watts};

/// Per-lane running totals, mirroring `simulate_node_dense`'s locals.
struct LaneAcc {
    samples: f64,
    harvested: Joules,
    delivered: Joules,
    shortfall: Joules,
    demanded: Joules,
    charged: Joules,
    discharged: Joules,
    brownout_steps: u64,
    outage_run: u64,
    longest_outage: u64,
    converter_losses: Joules,
    min_v: Volts,
    last_harvest: Watts,
}

impl LaneAcc {
    fn new() -> Self {
        Self {
            samples: 0.0,
            harvested: Joules::ZERO,
            delivered: Joules::ZERO,
            shortfall: Joules::ZERO,
            demanded: Joules::ZERO,
            charged: Joules::ZERO,
            discharged: Joules::ZERO,
            brownout_steps: 0,
            outage_run: 0,
            longest_outage: 0,
            converter_losses: Joules::ZERO,
            min_v: Volts::new(f64::INFINITY),
            last_harvest: Watts::ZERO,
        }
    }
}

/// Steps global nodes `lo..hi` of supercap dense group `g` as one lane
/// population, pushing their [`NodeOutcome`]s onto `out` in node order.
///
/// `shared` is the group-wide harvest table for un-jittered groups
/// (cache counters are synthesized exactly as the scalar dense path
/// does: every table read is a replay). Jittered runs build a group
/// channel and drive it once per window over per-lane jittered
/// snapshots; the caller has verified
/// [`mseh_power::InputChannel::supports_window_lanes`] for the plan's
/// `dt`.
///
/// Returns `false` — with no outcomes pushed — when `cancel` trips,
/// checked once per control window.
#[allow(clippy::too_many_arguments)]
pub(super) fn simulate_supercap_run(
    g: &DenseGroup,
    template: &Supercap,
    group_start: u64,
    lo: u64,
    hi: u64,
    rows: &[EnvConditions],
    shared: Option<&[HarvestStep]>,
    plan: &StepPlan,
    tier: DenseSolveTier,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let lanes_n = (hi - lo) as usize;
    let node_seed = |i: usize| {
        let within = lo - group_start + i as u64;
        Noise::new(g.seed).bits(NODE_SEED_STREAM, within)
    };

    let mut lanes = SupercapLanes::from_template(template, lanes_n);
    let interp_deviation = match tier {
        DenseSolveTier::Interpolated { samples } => lanes.set_interpolation(samples),
        _ => 0.0,
    };
    let cap = template.capacity();
    let recognized = cap;
    let initial_stored = template.stored_energy().value();
    let initial_losses = template.losses().value();

    let mut policies: Vec<_> = (0..lanes_n).map(|i| (g.policy)(node_seed(i))).collect();
    let mut acc: Vec<LaneAcc> = (0..lanes_n).map(|_| LaneAcc::new()).collect();

    // Jittered runs drive the group channel once per window over every
    // lane's jittered snapshot; the per-lane factors replicate the
    // scalar path's per-node derivation.
    let mut channel = if shared.is_none() {
        let mut ch = (g.channel)();
        if plan.quantize_drop_bits.is_some() {
            ch.set_cache_quantization(plan.quantize_drop_bits);
        }
        Some(ch)
    } else {
        None
    };
    let factors: Vec<JitterFactors> = if shared.is_none() {
        (0..lanes_n)
            .map(|i| JitterFactors::derive(g.jitter, node_seed(i)))
            .collect()
    } else {
        Vec::new()
    };
    let mut jenvs: Vec<EnvConditions> = Vec::new();
    let mut whs: Vec<HarvestStep> = vec![HarvestStep::default(); lanes_n];
    let mut fhs: Vec<HarvestStep> = vec![HarvestStep::default(); lanes_n];
    // Each lane's current window operating voltage, held across the
    // fractional closer exactly as a scalar controller holds its last
    // resample.
    let mut held: Vec<Volts> = vec![Volts::ZERO; lanes_n];
    // Channel solves per node (identical for every lane of the run);
    // the remaining `plan.steps − calls` harvest reads are replays.
    let mut calls = 0u64;

    // Per-window scratch from the policy prologue.
    let mut duties: Vec<DutyCycle> = vec![DutyCycle::ZERO; lanes_n];
    let mut loads: Vec<Watts> = vec![Watts::ZERO; lanes_n];
    let mut wsamples: Vec<f64> = vec![0.0; lanes_n];
    // Per-step staging for the batched store transfer.
    let mut charge_w = vec![0.0f64; lanes_n];
    let mut discharge_w = vec![0.0f64; lanes_n];
    let mut charged_o = vec![0.0f64; lanes_n];
    let mut discharged_o = vec![0.0f64; lanes_n];
    let mut deficit_l = vec![Joules::ZERO; lanes_n];
    let mut e_load_in_l = vec![Joules::ZERO; lanes_n];
    let mut servable_l = vec![true; lanes_n];

    let mut window_ordinal = 0usize;
    let mut window_start = 0u64;
    while window_start < plan.steps {
        if tripped(cancel) {
            return false;
        }
        let window_end = (window_start + plan.control_every).min(plan.steps);

        // Policy prologue, per lane: the exact `EnergyStatus` the scalar
        // dense path composes from its store.
        for i in 0..lanes_n {
            let soc_actual = if cap.value() > 0.0 {
                lanes.stored_energy(i) / cap.value()
            } else {
                0.0
            };
            let status = EnergyStatus::full(
                Volts::new(lanes.voltage(i)),
                Ratio::new(soc_actual),
                recognized * soc_actual,
                acc[i].last_harvest,
            )
            .clamped_to(g.monitoring);
            let duty = policies[i].choose(&g.node, &status.at(plan.time_at(window_start)));
            duties[i] = duty;
            loads[i] = g.node.average_power(duty);
            wsamples[i] = g.node.step(duty, plan.dt).samples;
        }

        // Harvest for the window: batched channel solve across lanes
        // (jittered) — the shared-table case reads per step below.
        if let Some(ch) = channel.as_mut() {
            let base = &rows[window_ordinal];
            jenvs.clear();
            jenvs.extend(factors.iter().map(|f| f.apply(base)));
            if window_start < plan.full_steps {
                ch.window_lanes(&jenvs, plan.dt, &mut whs);
                calls += 1;
                for i in 0..lanes_n {
                    held[i] = whs[i].operating_voltage;
                }
            }
        }

        for j in window_start..window_end {
            let frac_step = plan.frac_dt.is_some() && j == plan.full_steps;
            let step_dt = if frac_step {
                plan.frac_dt.expect("frac step implies frac_dt")
            } else {
                plan.dt
            };
            if frac_step {
                if let Some(ch) = channel.as_mut() {
                    ch.frac_lanes(&jenvs, &held, step_dt, &mut fhs);
                    calls += 1;
                }
            }

            // Pass A — the pre-transfer half of the scalar step: resolve
            // the lane's harvest, read the store voltage, stage the
            // charge/discharge request.
            for i in 0..lanes_n {
                let hs: &HarvestStep = match shared {
                    Some(table) => &table[j as usize],
                    None if frac_step => &fhs[i],
                    None => &whs[i],
                };
                let load = loads[i];

                let harvested_w = hs.delivered;
                let overhead_w = g.supervisor_overhead + g.output.quiescent() + hs.overhead;
                acc[i].last_harvest = harvested_w;

                let store_v = Volts::new(lanes.voltage(i));
                let (load_in_w, servable) = if load.value() > 0.0 {
                    if g.output.accepts_input_voltage(store_v) {
                        (g.output.input_for_output(load, store_v), true)
                    } else {
                        (Watts::ZERO, false)
                    }
                } else {
                    (Watts::ZERO, true)
                };

                let e_h = harvested_w * step_dt;
                let e_load_in = load_in_w * step_dt;
                let e_ov = overhead_w * step_dt;
                let step_demand = e_load_in + e_ov;

                charge_w[i] = 0.0;
                discharge_w[i] = 0.0;
                deficit_l[i] = Joules::ZERO;
                if e_h >= step_demand {
                    let surplus = e_h - step_demand;
                    if surplus.value() > 0.0 {
                        charge_w[i] = (surplus / step_dt).value();
                    }
                } else {
                    let deficit = step_demand - e_h;
                    if deficit.value() > 0.0 {
                        discharge_w[i] = (deficit / step_dt).value();
                    }
                    deficit_l[i] = deficit;
                }
                e_load_in_l[i] = e_load_in;
                servable_l[i] = servable;
                acc[i].harvested += e_h;
            }

            // Batched transfer + idle leak: four masked passes over the
            // lanes, bit-identical to per-lane `charge`/`discharge`/
            // `idle` (see `SupercapLanes::step`).
            lanes.step(
                &charge_w,
                &discharge_w,
                step_dt.value(),
                &mut charged_o,
                &mut discharged_o,
            );

            // Pass B — the post-transfer half: shortfall split, sample
            // accounting, outage tracking. Accumulator order matches the
            // scalar step exactly.
            for i in 0..lanes_n {
                let load = loads[i];
                let (step_samples, step_load_energy) = if frac_step {
                    (g.node.step(duties[i], step_dt).samples, load * step_dt)
                } else {
                    (wsamples[i], load * plan.dt)
                };
                let step_charged = Joules::new(charged_o[i]);
                let step_discharged = Joules::new(discharged_o[i]);
                let unmet = (deficit_l[i] - step_discharged).max(Joules::ZERO);
                let e_load_in = e_load_in_l[i];

                let (step_delivered, step_shortfall, step_conv_loss) = if !servable_l[i] {
                    (Joules::ZERO, load * step_dt, Joules::ZERO)
                } else if e_load_in.value() > 0.0 {
                    let load_unmet = unmet.min(e_load_in);
                    let served_in = e_load_in - load_unmet;
                    let served = (served_in / e_load_in).clamp(0.0, 1.0);
                    let full_load = load * step_dt;
                    let step_delivered = full_load * served;
                    (
                        step_delivered,
                        full_load * (1.0 - served),
                        (served_in - step_delivered).max(Joules::ZERO),
                    )
                } else {
                    (Joules::ZERO, Joules::ZERO, Joules::ZERO)
                };

                let a = &mut acc[i];
                a.delivered += step_delivered;
                a.shortfall += step_shortfall;
                a.charged += step_charged;
                a.discharged += step_discharged;
                a.converter_losses += step_conv_loss;
                a.demanded += step_load_energy;

                let served_fraction = if step_shortfall.value() > 0.0 {
                    let full = (step_delivered + step_shortfall).value();
                    if full > 0.0 {
                        step_delivered.value() / full
                    } else {
                        0.0
                    }
                } else {
                    1.0
                };
                a.samples += step_samples * served_fraction;

                if step_shortfall.value() > 1e-12 {
                    a.brownout_steps += 1;
                    a.outage_run += 1;
                    a.longest_outage = a.longest_outage.max(a.outage_run);
                } else {
                    a.outage_run = 0;
                }
                a.min_v = a.min_v.min(Volts::new(lanes.voltage(i)));
            }
        }
        window_start = window_end;
        window_ordinal += 1;
    }

    // Per-lane cache synthesis mirrors the scalar dense path: every
    // harvest read beyond the run's own solves is a memoized replay.
    let cache = CacheStats {
        misses: calls,
        hits: plan.steps - calls,
        ..CacheStats::default()
    };

    for (i, a) in acc.into_iter().enumerate() {
        let d_stored = lanes.stored_energy(i) - initial_stored;
        let d_losses = lanes.losses(i) - initial_losses;
        let residual_signed = a.charged.value() - a.discharged.value() - d_losses - d_stored;
        let throughput = (a.harvested + a.discharged + a.charged).value().max(1.0);
        let audit_residual = residual_signed.abs() / throughput;
        debug_assert!(
            audit_residual < 1e-6,
            "dense fleet node violated storage conservation: residual {residual_signed} J"
        );
        let uptime = if a.demanded.value() > 0.0 {
            1.0 - (a.shortfall.value() / a.demanded.value()).clamp(0.0, 1.0)
        } else {
            1.0
        };
        out.push(NodeOutcome {
            uptime,
            samples: a.samples,
            harvested: a.harvested,
            delivered: a.delivered,
            shortfall: a.shortfall,
            demanded: a.demanded,
            converter_losses: a.converter_losses,
            brownout_steps: a.brownout_steps,
            longest_outage_steps: a.longest_outage,
            min_store_voltage: a.min_v,
            audit_residual,
            residual_signed,
            throughput,
            stranded: Joules::ZERO,
            cache,
            interp_deviation,
        });
    }
    true
}
