//! Struct-of-arrays stepping for contiguous runs of dense nodes.
//!
//! A shard-local run of one dense class's members becomes a lane
//! population: stored state, losses and staged energy targets live in
//! contiguous `Vec<f64>`s ([`SupercapLanes`] for supercap buffers,
//! [`BatteryLanes`] for battery buffers) and the per-step store updates
//! execute as masked whole-lane passes instead of one `Storage` call
//! per node. Harvest solves batch the same way: un-jittered runs replay
//! the group-wide harvest table, jittered runs drive the group
//! channel's [`mseh_power::InputChannel::window_lanes`] once per
//! control window across every lane's jittered snapshot.
//!
//! The runner is generic over the store lane type ([`StoreLanes`]) and
//! over where its class parameters come from ([`DenseView`]): a
//! [`DenseGroup`](super::DenseGroup) on the dense lane, or a boxed
//! [`FleetGroup`](super::FleetGroup) whose members opted into the
//! kernels via [`DenseClass`](super::DenseClass). The policy arena
//! drives the same core through [`run_lane_population`], supplying one
//! policy per lane instead of seeding them from a factory.
//!
//! # Uniform fast path
//!
//! An un-jittered run starts with every lane in the template state,
//! reading the same shared harvest table. While every lane's policy
//! returns bit-identical duties the trajectories cannot diverge, so the
//! runner steps a single representative lane (every policy is still
//! driven each window — policy state must evolve exactly as scalar) and
//! materializes the full population from it on the first divergent
//! duty ([`SupercapLanes::replicate_lane0`]). Homogeneous-policy groups
//! collapse to one lane of arithmetic; heterogeneous groups pay at most
//! one window of single-lane work before falling back to full-width
//! stepping. Jittered runs never take the fast path (their harvests
//! differ per lane from the first window).
//!
//! # Bit-identity
//!
//! Every pass replicates the scalar path's exact arithmetic — same
//! operation order, same guard branches, same accumulator sequence as
//! [`simulate_node_dense`](super::simulate_node_dense) — and each
//! lane's iterates are independent of its companions, so the result is
//! bit-identical to the scalar tier *and* independent of how shards
//! split a group into runs. The uniform fast path preserves this: a
//! one-lane population's iterates equal any lane of a wider one. The
//! fleet tests assert all of it.

use super::{
    ChannelFactory, DenseSolveTier, NodeOutcome, PolicyFactory, StepPlan, NODE_SEED_STREAM,
};
use crate::cancel::{tripped, CancelToken};
use mseh_env::rng::Noise;
use mseh_env::{EnvConditions, EnvJitter, JitterFactors};
use mseh_harvesters::CacheStats;
use mseh_node::{DutyCyclePolicy, EnergyStatus, MonitoringLevel, SensorNode};
use mseh_power::{DcDcConverter, HarvestStep, InputChannel, PowerStage};
use mseh_storage::{Battery, BatteryLanes, Storage, Supercap, SupercapLanes};
use mseh_units::{DutyCycle, Joules, Ratio, Volts, Watts};

/// The class parameters the generic runner needs, borrowed from either
/// a [`DenseGroup`](super::DenseGroup) or a boxed
/// [`FleetGroup`](super::FleetGroup) + [`DenseClass`](super::DenseClass)
/// pair — the two lanes share the kernels verbatim.
pub(super) struct DenseView<'a> {
    pub(super) seed: u64,
    pub(super) jitter: EnvJitter,
    pub(super) node: &'a SensorNode,
    pub(super) channel: &'a ChannelFactory,
    pub(super) output: &'a DcDcConverter,
    pub(super) supervisor_overhead: Watts,
    pub(super) monitoring: MonitoringLevel,
    pub(super) policy: &'a PolicyFactory,
}

/// The node-side parameters of one lane population, with one policy
/// per lane. The fleet derives the policies from a class factory and
/// per-node seeds; the arena supplies one per contender. Policies are
/// borrowed mutably so callers can read post-run policy state (e.g.
/// failover counts) after the population finishes.
pub(crate) struct LanePopulation<'a> {
    pub(crate) node: &'a SensorNode,
    pub(crate) output: &'a DcDcConverter,
    pub(crate) supervisor_overhead: Watts,
    pub(crate) monitoring: MonitoringLevel,
    pub(crate) policies: &'a mut [Box<dyn DutyCyclePolicy>],
}

/// Where a lane population's harvests come from.
pub(crate) enum LaneHarvest<'a> {
    /// Every lane replays one class-wide per-step harvest table; cache
    /// counters are synthesized exactly as the scalar dense path does
    /// (every table read is a memoized replay). Populations in this
    /// mode start on the uniform fast path.
    Shared(&'a [HarvestStep]),
    /// Each lane sees its own jittered snapshot of the window's base
    /// conditions; the channel is driven once per window via
    /// `window_lanes` across all lanes. The caller has verified
    /// [`mseh_power::InputChannel::supports_window_lanes`] for the
    /// plan's `dt`.
    Jittered {
        channel: Box<InputChannel>,
        factors: Vec<JitterFactors>,
        rows: &'a [EnvConditions],
    },
}

/// The store-side lane kernel the generic runner drives: one whole-lane
/// masked step plus per-lane state reads, bit-identical to the scalar
/// `Storage` sequence by each implementation's contract.
trait StoreLanes: Sized {
    fn voltage(&self, i: usize) -> f64;
    fn stored_energy(&self, i: usize) -> f64;
    fn losses(&self, i: usize) -> f64;
    fn step(
        &mut self,
        charge_w: &[f64],
        discharge_w: &[f64],
        dt: f64,
        charged: &mut [f64],
        discharged: &mut [f64],
    );
    fn replicate_lane0(&self, lanes: usize) -> Self;
}

impl StoreLanes for SupercapLanes {
    fn voltage(&self, i: usize) -> f64 {
        SupercapLanes::voltage(self, i)
    }
    fn stored_energy(&self, i: usize) -> f64 {
        SupercapLanes::stored_energy(self, i)
    }
    fn losses(&self, i: usize) -> f64 {
        SupercapLanes::losses(self, i)
    }
    fn step(
        &mut self,
        charge_w: &[f64],
        discharge_w: &[f64],
        dt: f64,
        charged: &mut [f64],
        discharged: &mut [f64],
    ) {
        SupercapLanes::step(self, charge_w, discharge_w, dt, charged, discharged)
    }
    fn replicate_lane0(&self, lanes: usize) -> Self {
        SupercapLanes::replicate_lane0(self, lanes)
    }
}

impl StoreLanes for BatteryLanes {
    fn voltage(&self, i: usize) -> f64 {
        BatteryLanes::voltage(self, i)
    }
    fn stored_energy(&self, i: usize) -> f64 {
        BatteryLanes::stored_energy(self, i)
    }
    fn losses(&self, i: usize) -> f64 {
        BatteryLanes::losses(self, i)
    }
    fn step(
        &mut self,
        charge_w: &[f64],
        discharge_w: &[f64],
        dt: f64,
        charged: &mut [f64],
        discharged: &mut [f64],
    ) {
        BatteryLanes::step(self, charge_w, discharge_w, dt, charged, discharged)
    }
    fn replicate_lane0(&self, lanes: usize) -> Self {
        BatteryLanes::replicate_lane0(self, lanes)
    }
}

/// Per-lane running totals, mirroring `simulate_node_dense`'s locals.
#[derive(Clone)]
struct LaneAcc {
    samples: f64,
    harvested: Joules,
    delivered: Joules,
    shortfall: Joules,
    demanded: Joules,
    charged: Joules,
    discharged: Joules,
    brownout_steps: u64,
    outage_run: u64,
    longest_outage: u64,
    converter_losses: Joules,
    min_v: Volts,
    last_harvest: Watts,
}

impl LaneAcc {
    fn new() -> Self {
        Self {
            samples: 0.0,
            harvested: Joules::ZERO,
            delivered: Joules::ZERO,
            shortfall: Joules::ZERO,
            demanded: Joules::ZERO,
            charged: Joules::ZERO,
            discharged: Joules::ZERO,
            brownout_steps: 0,
            outage_run: 0,
            longest_outage: 0,
            converter_losses: Joules::ZERO,
            min_v: Volts::new(f64::INFINITY),
            last_harvest: Watts::ZERO,
        }
    }
}

/// Steps global nodes `lo..hi` of a supercap-store dense class as one
/// lane population, pushing their [`NodeOutcome`]s onto `out` in node
/// order. See [`run_lane_population`] for the shared semantics.
#[allow(clippy::too_many_arguments)]
pub(super) fn simulate_supercap_run(
    view: &DenseView<'_>,
    template: &Supercap,
    group_start: u64,
    lo: u64,
    hi: u64,
    rows: &[EnvConditions],
    shared: Option<&[HarvestStep]>,
    plan: &StepPlan,
    tier: DenseSolveTier,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let mut solo = SupercapLanes::from_template(template, 1);
    let interp_deviation = match tier {
        DenseSolveTier::Interpolated { samples } => solo.set_interpolation(samples),
        _ => 0.0,
    };
    simulate_dense_run(
        view,
        solo,
        template.capacity(),
        template.stored_energy().value(),
        template.losses().value(),
        interp_deviation,
        group_start,
        lo,
        hi,
        rows,
        shared,
        plan,
        cancel,
        out,
    )
}

/// Steps global nodes `lo..hi` of a battery-store dense class as one
/// lane population, pushing their [`NodeOutcome`]s onto `out` in node
/// order. Batteries have no iterative inversion to interpolate, so
/// every non-`Scalar` tier steps the exact [`BatteryLanes`] kernels
/// (the one lane-wide `powf` per distinct idle `dt` is already the
/// cheap path) and `interp_deviation` stays zero. See
/// [`run_lane_population`] for the shared semantics.
#[allow(clippy::too_many_arguments)]
pub(super) fn simulate_battery_run(
    view: &DenseView<'_>,
    template: &Battery,
    group_start: u64,
    lo: u64,
    hi: u64,
    rows: &[EnvConditions],
    shared: Option<&[HarvestStep]>,
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let solo = BatteryLanes::from_template(template, 1);
    simulate_dense_run(
        view,
        solo,
        template.capacity(),
        template.stored_energy().value(),
        template.losses().value(),
        0.0,
        group_start,
        lo,
        hi,
        rows,
        shared,
        plan,
        cancel,
        out,
    )
}

/// Fleet-facing wrapper: derives per-node seeds, policies, and (for
/// jittered runs) the group channel + per-lane jitter factors, then
/// hands the population to [`run_lane_population`].
#[allow(clippy::too_many_arguments)]
fn simulate_dense_run<L: StoreLanes>(
    view: &DenseView<'_>,
    solo: L,
    cap: Joules,
    initial_stored: f64,
    initial_losses: f64,
    interp_deviation: f64,
    group_start: u64,
    lo: u64,
    hi: u64,
    rows: &[EnvConditions],
    shared: Option<&[HarvestStep]>,
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let lanes_n = (hi - lo) as usize;
    let node_seed = |i: usize| {
        let within = lo - group_start + i as u64;
        Noise::new(view.seed).bits(NODE_SEED_STREAM, within)
    };

    let mut policies: Vec<Box<dyn DutyCyclePolicy>> =
        (0..lanes_n).map(|i| (view.policy)(node_seed(i))).collect();

    // Jittered runs drive the group channel once per window over every
    // lane's jittered snapshot; the per-lane factors replicate the
    // scalar path's per-node derivation.
    let harvest = match shared {
        Some(table) => LaneHarvest::Shared(table),
        None => {
            let mut ch = (view.channel)();
            if plan.quantize_drop_bits.is_some() {
                ch.set_cache_quantization(plan.quantize_drop_bits);
            }
            let factors: Vec<JitterFactors> = (0..lanes_n)
                .map(|i| JitterFactors::derive(view.jitter, node_seed(i)))
                .collect();
            LaneHarvest::Jittered {
                channel: Box::new(ch),
                factors,
                rows,
            }
        }
    };

    let mut pop = LanePopulation {
        node: view.node,
        output: view.output,
        supervisor_overhead: view.supervisor_overhead,
        monitoring: view.monitoring,
        policies: &mut policies,
    };
    run_lane_population(
        &mut pop,
        solo,
        cap,
        initial_stored,
        initial_losses,
        interp_deviation,
        harvest,
        plan,
        cancel,
        out,
    )
}

/// Steps a policy-lane population of a supercap-store class against a
/// shared harvest table, pushing one [`NodeOutcome`] per lane onto
/// `out` in lane order. Arena-facing analogue of
/// [`simulate_supercap_run`]: lanes are one-per-policy rather than
/// one-per-node.
pub(crate) fn run_supercap_lanes(
    pop: &mut LanePopulation<'_>,
    template: &Supercap,
    tier: DenseSolveTier,
    table: &[HarvestStep],
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let mut solo = SupercapLanes::from_template(template, 1);
    let interp_deviation = match tier {
        DenseSolveTier::Interpolated { samples } => solo.set_interpolation(samples),
        _ => 0.0,
    };
    run_lane_population(
        pop,
        solo,
        template.capacity(),
        template.stored_energy().value(),
        template.losses().value(),
        interp_deviation,
        LaneHarvest::Shared(table),
        plan,
        cancel,
        out,
    )
}

/// Steps a policy-lane population of a battery-store class against a
/// shared harvest table. Arena-facing analogue of
/// [`simulate_battery_run`].
pub(crate) fn run_battery_lanes(
    pop: &mut LanePopulation<'_>,
    template: &Battery,
    table: &[HarvestStep],
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let solo = BatteryLanes::from_template(template, 1);
    run_lane_population(
        pop,
        solo,
        template.capacity(),
        template.stored_energy().value(),
        template.losses().value(),
        0.0,
        LaneHarvest::Shared(table),
        plan,
        cancel,
        out,
    )
}

/// The generic lane runner: steps one [`LanePopulation`] as a
/// [`StoreLanes`] population, one lane per policy.
///
/// [`LaneHarvest::Shared`] populations replay the class-wide table
/// (cache counters are synthesized exactly as the scalar dense path
/// does: every table read is a replay) and start on the uniform fast
/// path (see the module docs). [`LaneHarvest::Jittered`] populations
/// drive the channel once per window over per-lane jittered snapshots.
///
/// Returns `false` — with no outcomes pushed — when `cancel` trips,
/// checked once per control window.
#[allow(clippy::too_many_arguments)]
fn run_lane_population<L: StoreLanes>(
    pop: &mut LanePopulation<'_>,
    solo: L,
    cap: Joules,
    initial_stored: f64,
    initial_losses: f64,
    interp_deviation: f64,
    harvest: LaneHarvest<'_>,
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<NodeOutcome>,
) -> bool {
    let lanes_n = pop.policies.len();
    let recognized = cap;

    let empty_rows: &[EnvConditions] = &[];
    let (shared, mut channel, factors, rows) = match harvest {
        LaneHarvest::Shared(table) => (Some(table), None, Vec::new(), empty_rows),
        LaneHarvest::Jittered {
            channel,
            factors,
            rows,
        } => (None, Some(channel), factors, rows),
    };

    // Uniform fast path: un-jittered lanes all start in the template
    // state and read the same table, so step one lane until the
    // policies produce a divergent duty.
    let mut uniform = shared.is_some();
    let mut lanes = if uniform {
        solo
    } else {
        solo.replicate_lane0(lanes_n)
    };
    // Lanes actually stepped this window (1 while uniform).
    let mut active = if uniform { 1 } else { lanes_n };

    let mut acc: Vec<LaneAcc> = (0..lanes_n).map(|_| LaneAcc::new()).collect();

    let mut jenvs: Vec<EnvConditions> = Vec::new();
    let mut whs: Vec<HarvestStep> = vec![HarvestStep::default(); lanes_n];
    let mut fhs: Vec<HarvestStep> = vec![HarvestStep::default(); lanes_n];
    // Each lane's current window operating voltage, held across the
    // fractional closer exactly as a scalar controller holds its last
    // resample.
    let mut held: Vec<Volts> = vec![Volts::ZERO; lanes_n];
    // Channel solves per node (identical for every lane of the run);
    // the remaining `plan.steps − calls` harvest reads are replays.
    let mut calls = 0u64;

    // Per-window scratch from the policy prologue.
    let mut duties: Vec<DutyCycle> = vec![DutyCycle::ZERO; lanes_n];
    let mut loads: Vec<Watts> = vec![Watts::ZERO; lanes_n];
    let mut wsamples: Vec<f64> = vec![0.0; lanes_n];
    // Per-step staging for the batched store transfer.
    let mut charge_w = vec![0.0f64; lanes_n];
    let mut discharge_w = vec![0.0f64; lanes_n];
    let mut charged_o = vec![0.0f64; lanes_n];
    let mut discharged_o = vec![0.0f64; lanes_n];
    let mut deficit_l = vec![Joules::ZERO; lanes_n];
    let mut e_load_in_l = vec![Joules::ZERO; lanes_n];
    let mut servable_l = vec![true; lanes_n];

    let mut window_ordinal = 0usize;
    let mut window_start = 0u64;
    while window_start < plan.steps {
        if tripped(cancel) {
            return false;
        }
        let window_end = (window_start + plan.control_every).min(plan.steps);

        // Policy prologue, per lane: the exact `EnergyStatus` the scalar
        // dense path composes from its store. While uniform, every
        // lane's state bit-equals lane 0's, so one status serves all
        // policies — each of which is still driven, so stateful
        // policies evolve exactly as scalar — and the population
        // materializes on the first divergent duty.
        if uniform {
            let soc_actual = if cap.value() > 0.0 {
                lanes.stored_energy(0) / cap.value()
            } else {
                0.0
            };
            let status = EnergyStatus::full(
                Volts::new(lanes.voltage(0)),
                Ratio::new(soc_actual),
                recognized * soc_actual,
                acc[0].last_harvest,
            )
            .clamped_to(pop.monitoring);
            let timed = status.at(plan.time_at(window_start));
            let mut diverged = false;
            for i in 0..lanes_n {
                duties[i] = pop.policies[i].choose(pop.node, &timed);
                if duties[i].value().to_bits() != duties[0].value().to_bits() {
                    diverged = true;
                }
            }
            if diverged {
                lanes = lanes.replicate_lane0(lanes_n);
                let a0 = acc[0].clone();
                for a in acc.iter_mut().skip(1) {
                    *a = a0.clone();
                }
                active = lanes_n;
                uniform = false;
            }
            for i in 0..active {
                loads[i] = pop.node.average_power(duties[i]);
                wsamples[i] = pop.node.step(duties[i], plan.dt).samples;
            }
        } else {
            for i in 0..lanes_n {
                let soc_actual = if cap.value() > 0.0 {
                    lanes.stored_energy(i) / cap.value()
                } else {
                    0.0
                };
                let status = EnergyStatus::full(
                    Volts::new(lanes.voltage(i)),
                    Ratio::new(soc_actual),
                    recognized * soc_actual,
                    acc[i].last_harvest,
                )
                .clamped_to(pop.monitoring);
                let duty = pop.policies[i].choose(pop.node, &status.at(plan.time_at(window_start)));
                duties[i] = duty;
                loads[i] = pop.node.average_power(duty);
                wsamples[i] = pop.node.step(duty, plan.dt).samples;
            }
        }

        // Harvest for the window: batched channel solve across lanes
        // (jittered) — the shared-table case reads per step below.
        if let Some(ch) = channel.as_mut() {
            let base = &rows[window_ordinal];
            jenvs.clear();
            jenvs.extend(factors.iter().map(|f| f.apply(base)));
            if window_start < plan.full_steps {
                ch.window_lanes(&jenvs, plan.dt, &mut whs);
                calls += 1;
                for i in 0..lanes_n {
                    held[i] = whs[i].operating_voltage;
                }
            }
        }

        for j in window_start..window_end {
            let frac_step = plan.frac_dt.is_some() && j == plan.full_steps;
            let step_dt = if frac_step {
                plan.frac_dt.expect("frac step implies frac_dt")
            } else {
                plan.dt
            };
            if frac_step {
                if let Some(ch) = channel.as_mut() {
                    ch.frac_lanes(&jenvs, &held, step_dt, &mut fhs);
                    calls += 1;
                }
            }

            // Pass A — the pre-transfer half of the scalar step: resolve
            // the lane's harvest, read the store voltage, stage the
            // charge/discharge request.
            for i in 0..active {
                let hs: &HarvestStep = match shared {
                    Some(table) => &table[j as usize],
                    None if frac_step => &fhs[i],
                    None => &whs[i],
                };
                let load = loads[i];

                let harvested_w = hs.delivered;
                let overhead_w = pop.supervisor_overhead + pop.output.quiescent() + hs.overhead;
                acc[i].last_harvest = harvested_w;

                let store_v = Volts::new(lanes.voltage(i));
                let (load_in_w, servable) = if load.value() > 0.0 {
                    if pop.output.accepts_input_voltage(store_v) {
                        (pop.output.input_for_output(load, store_v), true)
                    } else {
                        (Watts::ZERO, false)
                    }
                } else {
                    (Watts::ZERO, true)
                };

                let e_h = harvested_w * step_dt;
                let e_load_in = load_in_w * step_dt;
                let e_ov = overhead_w * step_dt;
                let step_demand = e_load_in + e_ov;

                charge_w[i] = 0.0;
                discharge_w[i] = 0.0;
                deficit_l[i] = Joules::ZERO;
                if e_h >= step_demand {
                    let surplus = e_h - step_demand;
                    if surplus.value() > 0.0 {
                        charge_w[i] = (surplus / step_dt).value();
                    }
                } else {
                    let deficit = step_demand - e_h;
                    if deficit.value() > 0.0 {
                        discharge_w[i] = (deficit / step_dt).value();
                    }
                    deficit_l[i] = deficit;
                }
                e_load_in_l[i] = e_load_in;
                servable_l[i] = servable;
                acc[i].harvested += e_h;
            }

            // Batched transfer + idle: masked passes over the lanes,
            // bit-identical to per-lane `charge`/`discharge`/`idle`
            // (see `SupercapLanes::step` / `BatteryLanes::step`).
            lanes.step(
                &charge_w[..active],
                &discharge_w[..active],
                step_dt.value(),
                &mut charged_o[..active],
                &mut discharged_o[..active],
            );

            // Pass B — the post-transfer half: shortfall split, sample
            // accounting, outage tracking. Accumulator order matches the
            // scalar step exactly.
            for i in 0..active {
                let load = loads[i];
                let (step_samples, step_load_energy) = if frac_step {
                    (pop.node.step(duties[i], step_dt).samples, load * step_dt)
                } else {
                    (wsamples[i], load * plan.dt)
                };
                let step_charged = Joules::new(charged_o[i]);
                let step_discharged = Joules::new(discharged_o[i]);
                let unmet = (deficit_l[i] - step_discharged).max(Joules::ZERO);
                let e_load_in = e_load_in_l[i];

                let (step_delivered, step_shortfall, step_conv_loss) = if !servable_l[i] {
                    (Joules::ZERO, load * step_dt, Joules::ZERO)
                } else if e_load_in.value() > 0.0 {
                    let load_unmet = unmet.min(e_load_in);
                    let served_in = e_load_in - load_unmet;
                    let served = (served_in / e_load_in).clamp(0.0, 1.0);
                    let full_load = load * step_dt;
                    let step_delivered = full_load * served;
                    (
                        step_delivered,
                        full_load * (1.0 - served),
                        (served_in - step_delivered).max(Joules::ZERO),
                    )
                } else {
                    (Joules::ZERO, Joules::ZERO, Joules::ZERO)
                };

                let a = &mut acc[i];
                a.delivered += step_delivered;
                a.shortfall += step_shortfall;
                a.charged += step_charged;
                a.discharged += step_discharged;
                a.converter_losses += step_conv_loss;
                a.demanded += step_load_energy;

                let served_fraction = if step_shortfall.value() > 0.0 {
                    let full = (step_delivered + step_shortfall).value();
                    if full > 0.0 {
                        step_delivered.value() / full
                    } else {
                        0.0
                    }
                } else {
                    1.0
                };
                a.samples += step_samples * served_fraction;

                if step_shortfall.value() > 1e-12 {
                    a.brownout_steps += 1;
                    a.outage_run += 1;
                    a.longest_outage = a.longest_outage.max(a.outage_run);
                } else {
                    a.outage_run = 0;
                }
                a.min_v = a.min_v.min(Volts::new(lanes.voltage(i)));
            }
        }
        window_start = window_end;
        window_ordinal += 1;
    }

    // Per-lane cache synthesis mirrors the scalar dense path: every
    // harvest read beyond the run's own solves is a memoized replay.
    let cache = CacheStats {
        misses: calls,
        hits: plan.steps - calls,
        ..CacheStats::default()
    };

    let fold = |a: &LaneAcc, i: usize| -> NodeOutcome {
        let d_stored = lanes.stored_energy(i) - initial_stored;
        let d_losses = lanes.losses(i) - initial_losses;
        let residual_signed = a.charged.value() - a.discharged.value() - d_losses - d_stored;
        let throughput = (a.harvested + a.discharged + a.charged).value().max(1.0);
        let audit_residual = residual_signed.abs() / throughput;
        debug_assert!(
            audit_residual < 1e-6,
            "dense fleet node violated storage conservation: residual {residual_signed} J"
        );
        let uptime = if a.demanded.value() > 0.0 {
            1.0 - (a.shortfall.value() / a.demanded.value()).clamp(0.0, 1.0)
        } else {
            1.0
        };
        NodeOutcome {
            uptime,
            samples: a.samples,
            harvested: a.harvested,
            delivered: a.delivered,
            shortfall: a.shortfall,
            demanded: a.demanded,
            converter_losses: a.converter_losses,
            brownout_steps: a.brownout_steps,
            longest_outage_steps: a.longest_outage,
            min_store_voltage: a.min_v,
            audit_residual,
            residual_signed,
            throughput,
            stranded: Joules::ZERO,
            cache,
            interp_deviation,
        }
    };

    if uniform {
        // Never diverged: every member's trajectory is lane 0's.
        let outcome = fold(&acc[0], 0);
        for _ in 0..lanes_n {
            out.push(outcome.clone());
        }
    } else {
        for (i, a) in acc.iter().enumerate() {
            out.push(fold(a, i));
        }
    }
    true
}
