//! A dependency-free scoped worker pool for embarrassingly-parallel
//! simulation work: seed ensembles, parameter sweeps and the bench
//! harness all fan out through [`par_map`].
//!
//! Built on [`std::thread::scope`] so borrowed data (environments,
//! nodes, factory closures) crosses into workers without `'static`
//! bounds or any external crate — the repo builds with no network
//! access. Work is claimed index-by-index from a shared atomic counter,
//! which balances uneven item costs (a cloudy-seed run can cost more
//! steps of converter iteration than a sunny one) without any
//! per-thread queue bookkeeping.
//!
//! The pool size comes from [`thread_count`]: the `MSEH_THREADS`
//! environment variable when set, otherwise
//! [`std::thread::available_parallelism`].
//!
//! # Determinism
//!
//! `par_map` preserves item order in its output: result `i` is always
//! `f(&items[i])` regardless of which worker ran it or in what order
//! items were claimed. Combined with the simulator's pure
//! `(seed, time)`-addressed randomness, parallel ensembles are
//! bit-for-bit identical to sequential ones.

use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count used by the parallel entry points: the
/// `MSEH_THREADS` environment variable when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`] (1 when even that
/// is unavailable).
///
/// # Examples
///
/// ```
/// let n = mseh_sim::thread_count();
/// assert!(n >= 1);
/// ```
pub fn thread_count() -> usize {
    if let Ok(raw) = std::env::var("MSEH_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on a scoped worker pool of [`thread_count`]
/// workers, preserving item order in the output.
///
/// Equivalent to `items.iter().map(f).collect()` but parallel; see
/// [`par_map_with`] for an explicit thread count.
///
/// # Examples
///
/// ```
/// let squares = mseh_sim::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// [`par_map`] with an explicit worker count (`threads == 1` runs
/// inline on the calling thread with no pool at all).
///
/// # Panics
///
/// Panics if `threads` is zero, or if `f` panics on any item (worker
/// panics propagate to the caller when the scope joins).
///
/// # Examples
///
/// ```
/// let doubled = mseh_sim::par_map_with(2, &[10, 20, 30], |&x| x * 2);
/// assert_eq!(doubled, vec![20, 40, 60]);
/// ```
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // Each worker claims the next unclaimed index and appends
    // `(index, result)` to a shared bin; order is restored afterwards.
    // The mutex is uncontended relative to the work — one lock per
    // item, and items here are whole simulation runs.
    let next = AtomicUsize::new(0);
    let bin: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                bin.lock().expect("result bin poisoned").extend(local);
            });
        }
    });

    let mut collected = bin.into_inner().expect("result bin poisoned");
    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), items.len());
    collected.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map_with`] where each item also gets a private
/// [`MetricsRegistry`]; the per-item registries are merged into one
/// after the scope joins.
///
/// The merge happens **in item order** (not in worker-completion
/// order), so the combined registry — like the result vector — is
/// bit-for-bit identical at any thread count. Registries are per-item
/// rather than per-worker precisely so that the merge order cannot
/// depend on how the atomic claiming interleaved.
///
/// # Panics
///
/// Panics if `threads` is zero or `f` panics on any item.
///
/// # Examples
///
/// ```
/// let (doubled, metrics) = mseh_sim::par_map_instrumented(2, &[1.0, 2.0, 3.0], |&x, reg| {
///     reg.counter_add("work_total", &[], x);
///     x * 2.0
/// });
/// assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
/// assert_eq!(metrics.counter("work_total", &[]), Some(6.0));
/// ```
pub fn par_map_instrumented<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, MetricsRegistry)
where
    T: Sync,
    R: Send,
    F: Fn(&T, &mut MetricsRegistry) -> R + Sync,
{
    let pairs = par_map_with(threads, items, |item| {
        let mut registry = MetricsRegistry::new();
        let result = f(item, &mut registry);
        (result, registry)
    });
    let mut merged = MetricsRegistry::new();
    let mut results = Vec::with_capacity(pairs.len());
    for (result, registry) in pairs {
        merged.merge(&registry);
        results.push(result);
    }
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expect: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map_with(threads, &items, |&x| x * 3 + 1);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn visits_every_item_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let hits = AtomicUsize::new(0);
        let got = par_map_with(4, &items, |&x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(got.iter().copied().collect::<HashSet<_>>().len(), 100);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let ids = par_map_with(4, &[(); 64], |_| {
            // Stall briefly so workers overlap and all get a share.
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_with(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_with(8, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn borrows_non_static_data() {
        let base = [100u64, 200, 300];
        let offsets = [0usize, 1, 2];
        let got = par_map_with(3, &offsets, |&i| base[i] + i as u64);
        assert_eq!(got, vec![100, 201, 302]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn rejects_zero_threads() {
        par_map_with(0, &[1], |&x: &i32| x);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn instrumented_merge_is_thread_count_independent() {
        let items: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let run = |threads| {
            par_map_instrumented(threads, &items, |&x, reg| {
                reg.counter_add("sum_total", &[], x);
                reg.gauge_set("last_item", &[], x);
                reg.histogram_observe("item_values", &[], x);
                x
            })
        };
        let (seq_results, seq_metrics) = run(1);
        for threads in [2, 4, 8] {
            let (results, metrics) = run(threads);
            assert_eq!(results, seq_results, "threads = {threads}");
            assert_eq!(metrics, seq_metrics, "threads = {threads}");
        }
        assert_eq!(seq_metrics.counter("sum_total", &[]), Some(780.0));
        // Gauges merge last-writer-wins in item order.
        assert_eq!(seq_metrics.gauge("last_item", &[]), Some(39.0));
        assert_eq!(seq_metrics.histogram("item_values", &[]).unwrap().count, 40);
    }
}
