//! Parameter-sweep helpers for the experiment harness: run a family of
//! simulations over a parameter grid and collect one summary value per
//! point.

use crate::parallel::{par_map_with, thread_count};
use mseh_units::Seconds;

/// One point of a sweep: the swept parameter value and the measured
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value.
    pub parameter: f64,
    /// The measured outcome at that value.
    pub outcome: f64,
}

/// Runs `measure` over each parameter value and collects the points.
///
/// # Examples
///
/// ```
/// use mseh_sim::sweep;
///
/// let points = sweep(&[1.0, 2.0, 3.0], |x| x * x);
/// assert_eq!(points[2].outcome, 9.0);
/// ```
pub fn sweep(parameters: &[f64], mut measure: impl FnMut(f64) -> f64) -> Vec<SweepPoint> {
    parameters
        .iter()
        .map(|&parameter| SweepPoint {
            parameter,
            outcome: measure(parameter),
        })
        .collect()
}

/// [`sweep`] fanned out across the worker pool
/// ([`thread_count`](crate::thread_count) workers; `MSEH_THREADS`
/// overrides): each grid point's measurement runs on its own worker,
/// and the returned points stay grid-aligned.
///
/// `measure` is shared by reference across workers, hence `Fn + Sync`
/// instead of `sweep`'s `FnMut`. Grid points whose measurement is a
/// pure function of the parameter (every simulation-backed sweep in the
/// bench harness qualifies) produce output identical to [`sweep`].
///
/// # Examples
///
/// ```
/// use mseh_sim::{par_sweep, sweep};
///
/// let grid = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(par_sweep(&grid, |x| x * x), sweep(&grid, |x| x * x));
/// ```
pub fn par_sweep(parameters: &[f64], measure: impl Fn(f64) -> f64 + Sync) -> Vec<SweepPoint> {
    par_sweep_with_threads(thread_count(), parameters, measure)
}

/// [`par_sweep`] with an explicit worker count (`1` runs inline).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn par_sweep_with_threads(
    threads: usize,
    parameters: &[f64],
    measure: impl Fn(f64) -> f64 + Sync,
) -> Vec<SweepPoint> {
    par_map_with(threads, parameters, |&parameter| SweepPoint {
        parameter,
        outcome: measure(parameter),
    })
}

/// Finds the smallest parameter in an ascending sweep whose outcome meets
/// `threshold` (`outcome >= threshold`), if any — the "minimum buffer
/// size for zero downtime" pattern of experiment E2.
pub fn first_meeting(points: &[SweepPoint], threshold: f64) -> Option<SweepPoint> {
    points.iter().copied().find(|p| p.outcome >= threshold)
}

/// Locates the crossover between two outcome series measured on the same
/// ascending parameter grid: the first parameter at which series `a`'s
/// outcome overtakes series `b`'s. Returns `None` when `a` never
/// overtakes, or when the grids differ — in length *or* in any
/// parameter value, since comparing outcomes measured at different
/// parameters is meaningless.
///
/// Used by experiment E3 to find the harvest level where MPPT starts
/// paying for its overhead.
///
/// Grid equality is judged to a relative tolerance (1 part in 10⁹), so
/// two grids built by equivalent-but-reordered arithmetic (e.g.
/// [`geometric_grid`] versus a hand-rolled `lo * r.powi(i)` loop) still
/// compare as the same grid instead of being rejected over one ULP.
pub fn crossover(a: &[SweepPoint], b: &[SweepPoint]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let same = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs());
    if a.iter()
        .zip(b)
        .any(|(pa, pb)| !same(pa.parameter, pb.parameter))
    {
        return None;
    }
    a.iter()
        .zip(b)
        .find(|(pa, pb)| pa.outcome > pb.outcome)
        .map(|(pa, _)| pa.parameter)
}

/// A geometric parameter grid from `lo` to `hi` (inclusive) with `n`
/// points — natural for power/size sweeps spanning decades.
///
/// # Panics
///
/// Panics if `lo` or `hi` is non-positive, `hi <= lo`, or `n < 2`.
pub fn geometric_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    assert!(n >= 2, "need at least two points");
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    let mut grid: Vec<f64> = (0..n).map(|i| lo * ratio.powi(i as i32)).collect();
    // powf/powi round-off leaves dust on the endpoints (lo * r^(n-1) is
    // not exactly hi), which breaks exact-bound comparisons downstream —
    // a sweep that should include the caller's hi can stop one ULP
    // short. Snap both ends to the requested bounds.
    grid[0] = lo;
    grid[n - 1] = hi;
    grid
}

/// Durations in whole days as a grid of seconds (for horizon sweeps).
pub fn day_grid(days: &[f64]) -> Vec<Seconds> {
    days.iter().map(|&d| Seconds::from_days(d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_applies_measure() {
        let pts = sweep(&[0.0, 1.0, 2.0], |x| 2.0 * x + 1.0);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].outcome, 1.0);
        assert_eq!(pts[2].outcome, 5.0);
    }

    #[test]
    fn first_meeting_finds_threshold() {
        let pts = sweep(&[1.0, 2.0, 4.0, 8.0], |x| x);
        let hit = first_meeting(&pts, 3.0).expect("4 meets it");
        assert_eq!(hit.parameter, 4.0);
        assert!(first_meeting(&pts, 100.0).is_none());
    }

    #[test]
    fn crossover_detects_overtake() {
        let grid = [1.0, 2.0, 3.0, 4.0];
        let a = sweep(&grid, |x| x * x); // overtakes...
        let b = sweep(&grid, |x| 3.0 * x); // ...after x=3
        assert_eq!(crossover(&a, &b), Some(4.0));
        assert_eq!(crossover(&b, &a), Some(1.0));
        assert_eq!(crossover(&a, &a), None);
        assert_eq!(crossover(&a, &b[..2]), None);
    }

    #[test]
    fn crossover_rejects_mismatched_grids() {
        let a = sweep(&[1.0, 2.0, 3.0], |x| x * x);
        // Same length, different parameter values: outcomes are not
        // comparable, even though a's outcomes overtake b's everywhere.
        let b = sweep(&[1.0, 2.5, 3.0], |x| x);
        assert_eq!(crossover(&a, &b), None);
        assert_eq!(crossover(&b, &a), None);
        // An exactly matching grid still works.
        let c = sweep(&[1.0, 2.0, 3.0], |x| x);
        assert_eq!(crossover(&a, &c), Some(2.0));
    }

    #[test]
    fn par_sweep_matches_sequential() {
        let grid = geometric_grid(0.1, 100.0, 13);
        let measure = |x: f64| (x * 1.7).sin() + x.sqrt();
        let seq = sweep(&grid, measure);
        for threads in [1, 2, 4] {
            assert_eq!(
                par_sweep_with_threads(threads, &grid, measure),
                seq,
                "threads = {threads}"
            );
        }
        assert_eq!(par_sweep(&grid, measure), seq);
    }

    #[test]
    fn geometric_grid_spans_decades() {
        let g = geometric_grid(1.0, 1000.0, 4);
        assert_eq!(g.len(), 4);
        assert!((g[0] - 1.0).abs() < 1e-12);
        assert!((g[1] - 10.0).abs() < 1e-9);
        assert!((g[3] - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn grid_endpoints_are_exact() {
        // Regression: powf round-off used to leave the last point one
        // ULP off hi (e.g. 99.99999999999997 for hi = 100), so exact
        // comparisons against the requested bounds failed.
        for (lo, hi, n) in [(0.1, 100.0, 13), (1.0, 3.0, 7), (2e-6, 5e3, 41)] {
            let g = geometric_grid(lo, hi, n);
            assert_eq!(g[0], lo, "lo for ({lo}, {hi}, {n})");
            assert_eq!(g[n - 1], hi, "hi for ({lo}, {hi}, {n})");
            // Still strictly ascending after the snap.
            assert!(g.windows(2).all(|w| w[0] < w[1]), "{g:?}");
        }
    }

    #[test]
    fn crossover_tolerates_one_ulp_of_grid_noise() {
        // Regression: grids computed by equivalent-but-reordered
        // arithmetic differ in the last bit; exact == rejected them.
        let grid = geometric_grid(0.5, 64.0, 9);
        // The same grid via a cumulative product instead of powi: the
        // rounding accumulates differently.
        let ratio = (64.0f64 / 0.5).powf(1.0 / 8.0);
        let mut v = 0.5;
        let jittered: Vec<f64> = (0..9)
            .map(|_| {
                let cur = v;
                v *= ratio;
                cur
            })
            .collect();
        assert_ne!(grid, jittered, "jitter should actually perturb bits");
        let a = sweep(&grid, |x| x * x);
        let b = sweep(&jittered, |x| 10.0 * x);
        assert_eq!(crossover(&a, &b), Some(grid[5]));
        // A genuinely different grid is still rejected.
        let shifted: Vec<f64> = grid.iter().map(|&x| x * 1.001).collect();
        let c = sweep(&shifted, |x| x);
        assert_eq!(crossover(&a, &c), None);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn grid_rejects_bad_range() {
        geometric_grid(10.0, 1.0, 4);
    }

    #[test]
    fn day_grid_converts() {
        let g = day_grid(&[1.0, 7.0]);
        assert_eq!(g[1].as_days(), 7.0);
    }
}
