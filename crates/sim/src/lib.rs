//! Discrete-time simulation kernel for multi-source harvesting platforms.
//!
//! The kernel drives a [`Platform`] (a [`mseh_core::PowerUnit`] or
//! [`mseh_core::SmartNetwork`]) against a seeded
//! [`mseh_env::Environment`], with a [`mseh_node::SensorNode`] as the
//! load and a [`mseh_node::DutyCyclePolicy`] closing the energy-awareness
//! loop. Power flow is solved quasi-statically per step (the standard
//! approach for long-horizon energy-harvesting simulation), and the run's
//! energy books are audited: the storage conservation identity must close
//! to numerical precision or the run fails in debug builds.
//!
//! [`sweep`] and friends support the experiment harness: parameter grids,
//! threshold search (minimum buffer size) and crossover location (where
//! MPPT starts paying off).
//!
//! Ensembles and sweeps fan out across a dependency-free scoped worker
//! pool ([`par_map`]; `MSEH_THREADS` sets the width, default
//! [`std::thread::available_parallelism`]). Because every run is a pure
//! function of its seed, parallel output is bit-for-bit identical to
//! sequential output at any thread count.
//!
//! # Examples
//!
//! ```
//! use mseh_sim::{run_simulation, SimConfig};
//! use mseh_core::{PowerUnit, StoreRole, PortRequirement};
//! use mseh_power::{InputChannel, FractionalVoc, DcDcConverter, IdealDiode};
//! use mseh_harvesters::PvModule;
//! use mseh_storage::Supercap;
//! use mseh_node::{SensorNode, VoltageThreshold};
//! use mseh_env::Environment;
//! use mseh_units::{Seconds, Volts};
//!
//! let channel = InputChannel::new(
//!     Box::new(PvModule::outdoor_panel_half_watt()),
//!     Box::new(FractionalVoc::pv_standard()),
//!     Box::new(IdealDiode::nanopower()),
//!     Box::new(DcDcConverter::mppt_front_end_5v()),
//! );
//! let mut unit = PowerUnit::builder("doc demo")
//!     .harvester_port(
//!         PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
//!         Some(channel), true)
//!     .store_port(
//!         PortRequirement::any_in_window("buf", Volts::ZERO, Volts::new(3.0)),
//!         Some(Box::new(Supercap::edlc_22f())), StoreRole::PrimaryBuffer, true)
//!     .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
//!     .build();
//!
//! let result = run_simulation(
//!     &mut unit,
//!     &Environment::outdoor_temperate(42),
//!     &SensorNode::submilliwatt_class(),
//!     &mut VoltageThreshold::supercap_ladder(),
//!     SimConfig::over(Seconds::from_days(2.0)),
//! );
//! assert!(result.harvested.value() > 0.0);
//! assert!(result.audit_residual < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod campaign;
mod cancel;
mod ensemble;
mod fault;
mod fleet;
mod metrics;
mod observe;
mod parallel;
mod platform;
mod runner;
pub mod serve;
mod sweep;

pub use arena::{
    default_contenders, run_arena, run_arena_controlled, ArenaConfig, ArenaResult, ArenaSpec,
    ArenaSummary, Contender, ContenderStanding, EnvFactory,
};
pub use campaign::{
    run_resilience_campaign, run_resilience_campaign_cancellable,
    run_resilience_campaign_with_threads, CampaignConfig, CampaignSummary, FaultScenario,
    ScenarioOutcome,
};
pub use cancel::CancelToken;
pub use ensemble::{
    run_seed_ensemble, run_seed_ensemble_instrumented, run_seed_ensemble_seq,
    run_seed_ensemble_with_threads, EnsembleSummary, InstrumentedEnsemble, Spread,
};
pub use fault::{
    DegradingHarvester, FailingStorage, FaultSchedule, GlitchingHarvester, IntermittentStorage,
};
pub use fleet::{
    run_fleet, run_fleet_controlled, ChannelFactory, DenseClass, DenseGroup, DenseSolveTier,
    DenseStore, EnvCadence, FleetConfig, FleetControl, FleetGroup, FleetResult, FleetSpec,
    FleetSummary, GroupEntry, PlatformFactory, PolicyFactory, Straggler, UptimePercentiles,
};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    DEFAULT_BUCKETS,
};
pub use observe::{
    AuditReport, ConservationAuditor, EventSink, MetricsObserver, RingRecorder, SimEvent,
    SimObserver, SinkFormat, StepEnergies, Tandem,
};
pub use parallel::{par_map, par_map_instrumented, par_map_with, thread_count};
pub use platform::Platform;
pub use runner::{
    publish_kernel_cache_stats, run_simulation, run_simulation_cancellable,
    run_simulation_observed, SimConfig, SimResult, SimTraces,
};
pub use sweep::{
    crossover, day_grid, first_meeting, geometric_grid, par_sweep, par_sweep_with_threads, sweep,
    SweepPoint,
};
