//! Structured step-event tracing for the simulation kernel: the
//! [`SimObserver`] trait, ready-made recorders (ring buffer, CSV/JSONL
//! sink, metrics bridge) and the energy-conservation auditor.
//!
//! The kernel ([`crate::run_simulation_observed`]) emits a [`SimEvent`]
//! stream — run/window boundaries, per-step harvest, conversion loss,
//! store charge/discharge, policy changes, fault firings — to every
//! attached observer. When no observer is attached the kernel skips
//! event construction entirely, so the bare hot loop pays only a branch
//! (measured, not assumed: `cargo run -p mseh-bench --bin perf` reports
//! instrumented-vs-bare throughput in `BENCH_sim.json`).
//!
//! # Examples
//!
//! Auditing energy conservation per control window:
//!
//! ```
//! use mseh_sim::{run_simulation_observed, ConservationAuditor, SimConfig};
//! use mseh_core::{PowerUnit, StoreRole, PortRequirement};
//! use mseh_power::DcDcConverter;
//! use mseh_storage::Supercap;
//! use mseh_node::{SensorNode, FixedDuty};
//! use mseh_env::Environment;
//! use mseh_units::{DutyCycle, Seconds, Volts};
//!
//! let mut cap = Supercap::edlc_22f();
//! cap.set_voltage(Volts::new(2.5));
//! let mut unit = PowerUnit::builder("audited")
//!     .store_port(
//!         PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
//!         Some(Box::new(cap)), StoreRole::PrimaryBuffer, true)
//!     .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
//!     .build();
//! let mut auditor = ConservationAuditor::new();
//! run_simulation_observed(
//!     &mut unit,
//!     &Environment::indoor_office(1),
//!     &SensorNode::submilliwatt_class(),
//!     &mut FixedDuty::new(DutyCycle::saturating(0.05)),
//!     SimConfig::over(Seconds::from_hours(2.0)),
//!     &mut [&mut auditor],
//! );
//! let report = auditor.report();
//! assert!(report.windows > 0);
//! assert!(report.worst_relative < 1e-6, "{report}");
//! ```

use crate::metrics::{CounterHandle, GaugeHandle, HistogramHandle, MetricsRegistry};
use mseh_units::{DutyCycle, Joules, Seconds, Watts};

/// One structured event from a simulation run.
///
/// Energy events carry per-step energies; window events carry the
/// platform's storage inventory at the boundary, which is what lets the
/// [`ConservationAuditor`] close the books window by window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// The run begins.
    RunStart {
        /// Simulation time of the first step.
        time: Seconds,
    },
    /// A control window opens (the policy has just decided).
    WindowStart {
        /// Window start time.
        time: Seconds,
        /// Duty cycle chosen for the window.
        duty: DutyCycle,
        /// Node average load at that duty.
        load: Watts,
        /// Platform stored energy entering the window.
        stored: Joules,
        /// Cumulative storage losses entering the window.
        losses: Joules,
    },
    /// The policy changed its duty choice between windows.
    PolicyChange {
        /// Time of the new window.
        time: Seconds,
        /// Previous window's duty.
        from: DutyCycle,
        /// New duty.
        to: DutyCycle,
    },
    /// Bus energy harvested this step.
    Harvest {
        /// Step start time.
        time: Seconds,
        /// Harvested bus energy.
        energy: Joules,
    },
    /// Conversion and housekeeping losses this step.
    ConversionLoss {
        /// Step start time.
        time: Seconds,
        /// Output-stage conversion loss.
        converter: Joules,
        /// Standing (quiescent/housekeeping) overhead.
        overhead: Joules,
    },
    /// Bus energy into stores this step.
    StoreCharge {
        /// Step start time.
        time: Seconds,
        /// Energy accepted by the stores.
        energy: Joules,
    },
    /// Bus energy out of stores this step.
    StoreDischarge {
        /// Step start time.
        time: Seconds,
        /// Energy delivered by the stores.
        energy: Joules,
    },
    /// Load energy that went unserved this step.
    Shortfall {
        /// Step start time.
        time: Seconds,
        /// Unserved load energy.
        energy: Joules,
    },
    /// Storage capacity dropped since the last check — a device failed
    /// or degraded (detected at control-window granularity), or an
    /// injected fault wrapper reported a firing through its fired-count
    /// (which also catches faults that fire *and* clear inside one
    /// window).
    FaultFire {
        /// Time of the window at which the drop was observed.
        time: Seconds,
        /// Capacity lost since the previous window.
        lost_capacity: Joules,
    },
    /// A previously fired fault cleared — the device recovered
    /// (detected at control-window granularity from the platform's
    /// fault-clear count).
    FaultClear {
        /// Time of the window at which the recovery was observed.
        time: Seconds,
        /// Capacity restored since the previous window.
        restored_capacity: Joules,
    },
    /// The duty-cycle policy engaged its failover path (degraded duty
    /// and/or a store re-route) after detecting an energy collapse.
    FailoverEngaged {
        /// Time of the window at which the failover was observed.
        time: Seconds,
        /// The duty the policy chose for the degraded window.
        duty: DutyCycle,
    },
    /// A control window closes.
    WindowEnd {
        /// Window end time.
        time: Seconds,
        /// Platform stored energy leaving the window.
        stored: Joules,
        /// Cumulative storage losses leaving the window.
        losses: Joules,
    },
    /// The run is over.
    RunEnd {
        /// Simulation time at the end of the horizon.
        time: Seconds,
    },
}

impl SimEvent {
    /// Short machine-readable event name.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::RunStart { .. } => "run_start",
            SimEvent::WindowStart { .. } => "window_start",
            SimEvent::PolicyChange { .. } => "policy_change",
            SimEvent::Harvest { .. } => "harvest",
            SimEvent::ConversionLoss { .. } => "conversion_loss",
            SimEvent::StoreCharge { .. } => "store_charge",
            SimEvent::StoreDischarge { .. } => "store_discharge",
            SimEvent::Shortfall { .. } => "shortfall",
            SimEvent::FaultFire { .. } => "fault_fire",
            SimEvent::FaultClear { .. } => "fault_clear",
            SimEvent::FailoverEngaged { .. } => "failover_engaged",
            SimEvent::WindowEnd { .. } => "window_end",
            SimEvent::RunEnd { .. } => "run_end",
        }
    }

    /// The event's timestamp.
    pub fn time(&self) -> Seconds {
        match *self {
            SimEvent::RunStart { time }
            | SimEvent::WindowStart { time, .. }
            | SimEvent::PolicyChange { time, .. }
            | SimEvent::Harvest { time, .. }
            | SimEvent::ConversionLoss { time, .. }
            | SimEvent::StoreCharge { time, .. }
            | SimEvent::StoreDischarge { time, .. }
            | SimEvent::Shortfall { time, .. }
            | SimEvent::FaultFire { time, .. }
            | SimEvent::FaultClear { time, .. }
            | SimEvent::FailoverEngaged { time, .. }
            | SimEvent::WindowEnd { time, .. }
            | SimEvent::RunEnd { time } => time,
        }
    }

    /// Up to four numeric payload values, in declaration order (see the
    /// per-variant field docs); used by the CSV sink's `v1..v4` columns.
    pub fn values(&self) -> [Option<f64>; 4] {
        match *self {
            SimEvent::RunStart { .. } | SimEvent::RunEnd { .. } => [None; 4],
            SimEvent::WindowStart {
                duty,
                load,
                stored,
                losses,
                ..
            } => [
                Some(duty.value()),
                Some(load.value()),
                Some(stored.value()),
                Some(losses.value()),
            ],
            SimEvent::PolicyChange { from, to, .. } => {
                [Some(from.value()), Some(to.value()), None, None]
            }
            SimEvent::Harvest { energy, .. }
            | SimEvent::StoreCharge { energy, .. }
            | SimEvent::StoreDischarge { energy, .. }
            | SimEvent::Shortfall { energy, .. } => [Some(energy.value()), None, None, None],
            SimEvent::ConversionLoss {
                converter,
                overhead,
                ..
            } => [Some(converter.value()), Some(overhead.value()), None, None],
            SimEvent::FaultFire { lost_capacity, .. } => {
                [Some(lost_capacity.value()), None, None, None]
            }
            SimEvent::FaultClear {
                restored_capacity, ..
            } => [Some(restored_capacity.value()), None, None, None],
            SimEvent::FailoverEngaged { duty, .. } => [Some(duty.value()), None, None, None],
            SimEvent::WindowEnd { stored, losses, .. } => {
                [Some(stored.value()), Some(losses.value()), None, None]
            }
        }
    }

    /// One CSV row (`time_s,event,v1,v2,v3,v4`; unused columns empty).
    pub fn to_csv_row(&self) -> String {
        let vs = self.values();
        let col = |v: Option<f64>| v.map(|x| x.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{}",
            self.time().value(),
            self.kind(),
            col(vs[0]),
            col(vs[1]),
            col(vs[2]),
            col(vs[3]),
        )
    }

    /// One JSON object (a JSONL line, without the trailing newline).
    pub fn to_jsonl(&self) -> String {
        let names: &[&str] = match self {
            SimEvent::WindowStart { .. } => &["duty", "load_w", "stored_j", "losses_j"],
            SimEvent::PolicyChange { .. } => &["from", "to"],
            SimEvent::ConversionLoss { .. } => &["converter_j", "overhead_j"],
            SimEvent::FaultFire { .. } => &["lost_capacity_j"],
            SimEvent::FaultClear { .. } => &["restored_capacity_j"],
            SimEvent::FailoverEngaged { .. } => &["duty"],
            SimEvent::WindowEnd { .. } => &["stored_j", "losses_j"],
            SimEvent::RunStart { .. } | SimEvent::RunEnd { .. } => &[],
            _ => &["energy_j"],
        };
        let mut out = format!(
            "{{\"t\":{},\"event\":\"{}\"",
            self.time().value(),
            self.kind()
        );
        for (name, v) in names.iter().zip(self.values().iter()) {
            if let Some(v) = v {
                out.push_str(&format!(",\"{name}\":{v}"));
            }
        }
        out.push('}');
        out
    }
}

/// An observer of simulation events.
///
/// Implement [`on_event`](SimObserver::on_event) for generic recorders
/// (ring buffers, sinks), or override the fine-grained hooks — the
/// default `on_event` dispatches to them — for semantic consumers like
/// the [`ConservationAuditor`].
#[allow(unused_variables)]
pub trait SimObserver {
    /// The run begins.
    fn on_run_start(&mut self, time: Seconds) {}
    /// A control window opens with the policy's choice for it.
    fn on_window_start(
        &mut self,
        time: Seconds,
        duty: DutyCycle,
        load: Watts,
        stored: Joules,
        losses: Joules,
    ) {
    }
    /// The policy's duty choice changed between windows.
    fn on_policy_change(&mut self, time: Seconds, from: DutyCycle, to: DutyCycle) {}
    /// Bus energy harvested this step.
    fn on_harvest(&mut self, time: Seconds, energy: Joules) {}
    /// Conversion + housekeeping losses this step.
    fn on_conversion_loss(&mut self, time: Seconds, converter: Joules, overhead: Joules) {}
    /// Bus energy into stores this step.
    fn on_store_charge(&mut self, time: Seconds, energy: Joules) {}
    /// Bus energy out of stores this step.
    fn on_store_discharge(&mut self, time: Seconds, energy: Joules) {}
    /// Unserved load energy this step.
    fn on_shortfall(&mut self, time: Seconds, energy: Joules) {}
    /// Storage capacity dropped — a device failed or degraded.
    fn on_fault_fire(&mut self, time: Seconds, lost_capacity: Joules) {}
    /// A fired fault cleared — the device recovered.
    fn on_fault_clear(&mut self, time: Seconds, restored_capacity: Joules) {}
    /// The policy engaged its failover path.
    fn on_failover_engaged(&mut self, time: Seconds, duty: DutyCycle) {}
    /// A control window closes.
    fn on_window_end(&mut self, time: Seconds, stored: Joules, losses: Joules) {}
    /// The run is over.
    fn on_run_end(&mut self, time: Seconds) {}

    /// Receives every event; the default implementation dispatches to
    /// the fine-grained hooks above.
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::RunStart { time } => self.on_run_start(time),
            SimEvent::WindowStart {
                time,
                duty,
                load,
                stored,
                losses,
            } => self.on_window_start(time, duty, load, stored, losses),
            SimEvent::PolicyChange { time, from, to } => self.on_policy_change(time, from, to),
            SimEvent::Harvest { time, energy } => self.on_harvest(time, energy),
            SimEvent::ConversionLoss {
                time,
                converter,
                overhead,
            } => self.on_conversion_loss(time, converter, overhead),
            SimEvent::StoreCharge { time, energy } => self.on_store_charge(time, energy),
            SimEvent::StoreDischarge { time, energy } => self.on_store_discharge(time, energy),
            SimEvent::Shortfall { time, energy } => self.on_shortfall(time, energy),
            SimEvent::FaultFire {
                time,
                lost_capacity,
            } => self.on_fault_fire(time, lost_capacity),
            SimEvent::FaultClear {
                time,
                restored_capacity,
            } => self.on_fault_clear(time, restored_capacity),
            SimEvent::FailoverEngaged { time, duty } => self.on_failover_engaged(time, duty),
            SimEvent::WindowEnd {
                time,
                stored,
                losses,
            } => self.on_window_end(time, stored, losses),
            SimEvent::RunEnd { time } => self.on_run_end(time),
        }
    }

    /// Receives a control window's worth of per-step records.
    ///
    /// The runner buffers one compact [`StepEnergies`] record per step
    /// and delivers the window's records through a single call, so an
    /// observer behind a `dyn` pointer pays one dynamic dispatch per
    /// window instead of several per step. The default body derives
    /// from each record exactly the events the runner would have
    /// emitted one at a time — `Harvest` and `ConversionLoss` always,
    /// `StoreCharge`/`StoreDischarge`/`Shortfall` when positive, in
    /// that order — and feeds them to [`on_event`]
    /// (SimObserver::on_event), statically dispatched inside the
    /// implementor's instantiation (so the construction optimizes away
    /// against the body). Overriding observers must preserve that
    /// per-event equivalence.
    #[inline]
    fn on_step_records(&mut self, records: &[StepEnergies]) {
        for r in records {
            self.on_event(&SimEvent::Harvest {
                time: r.time,
                energy: r.harvested,
            });
            self.on_event(&SimEvent::ConversionLoss {
                time: r.time,
                converter: r.converter_loss,
                overhead: r.overhead,
            });
            if r.charged.value() > 0.0 {
                self.on_event(&SimEvent::StoreCharge {
                    time: r.time,
                    energy: r.charged,
                });
            }
            if r.discharged.value() > 0.0 {
                self.on_event(&SimEvent::StoreDischarge {
                    time: r.time,
                    energy: r.discharged,
                });
            }
            if r.shortfall.value() > 0.0 {
                self.on_event(&SimEvent::Shortfall {
                    time: r.time,
                    energy: r.shortfall,
                });
            }
        }
    }
}

/// One simulation step's energy flows, as buffered by the runner for
/// batched observer delivery (see
/// [`SimObserver::on_step_records`]): the step's events are derived
/// from this record, not stored individually.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepEnergies {
    /// Step start time.
    pub time: Seconds,
    /// Harvested bus energy.
    pub harvested: Joules,
    /// Output-stage conversion loss.
    pub converter_loss: Joules,
    /// Standing (quiescent/housekeeping) overhead.
    pub overhead: Joules,
    /// Energy accepted by the stores.
    pub charged: Joules,
    /// Energy delivered by the stores.
    pub discharged: Joules,
    /// Unserved load energy.
    pub shortfall: Joules,
}

/// Fans each event out to two observers through a single dynamic
/// dispatch.
///
/// The runner calls `on_event` once per observer per event through a
/// vtable; attaching several observers multiplies that cost. `Tandem`
/// folds a pair into one slot: the runner makes one virtual call and
/// the two inner `on_event` bodies are statically dispatched (and
/// inlinable) from it. Event order and content are exactly as if both
/// observers were attached separately, so results are unchanged — this
/// is purely a hot-loop optimisation. Nest tandems for three or more.
///
/// # Examples
///
/// ```
/// use mseh_sim::{ConservationAuditor, MetricsObserver, Tandem};
///
/// let mut meter = MetricsObserver::new();
/// let mut auditor = ConservationAuditor::new();
/// let mut both = Tandem(&mut meter, &mut auditor);
/// # let _ = &mut both;
/// // run_simulation_observed(..., &mut [&mut both])
/// ```
pub struct Tandem<'a, A: SimObserver, B: SimObserver>(pub &'a mut A, pub &'a mut B);

impl<A: SimObserver, B: SimObserver> SimObserver for Tandem<'_, A, B> {
    #[inline]
    fn on_event(&mut self, event: &SimEvent) {
        self.0.on_event(event);
        self.1.on_event(event);
    }

    // Forward the whole batch to each half in turn (two small loops)
    // rather than interleaving per record (one fused body): each
    // observer still sees the window's records in order, which is all
    // the batch contract promises.
    #[inline]
    fn on_step_records(&mut self, records: &[StepEnergies]) {
        self.0.on_step_records(records);
        self.1.on_step_records(records);
    }
}

/// A fixed-capacity ring buffer of the most recent events — the
/// flight recorder: cheap enough to leave attached, complete enough to
/// reconstruct the recent past after an anomaly.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    buf: Vec<SimEvent>,
    capacity: usize,
    next: usize,
    total: u64,
}

impl RingRecorder {
    /// Creates a recorder keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<SimEvent> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events seen over the recorder's lifetime (including
    /// overwritten ones).
    pub fn total_seen(&self) -> u64 {
        self.total
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl SimObserver for RingRecorder {
    fn on_event(&mut self, event: &SimEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(*event);
        } else {
            self.buf[self.next] = *event;
        }
        self.next = (self.next + 1) % self.capacity;
        self.total += 1;
    }
}

/// Output format for an [`EventSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// `time_s,event,v1,v2,v3,v4` rows with a header line.
    Csv,
    /// One JSON object per line.
    Jsonl,
}

/// Streams every event to a [`std::io::Write`] as CSV or JSONL.
///
/// Write errors don't panic mid-simulation; the first one is kept and
/// reported by [`EventSink::error`].
///
/// # Examples
///
/// ```
/// use mseh_sim::{EventSink, SinkFormat, SimEvent, SimObserver};
/// use mseh_units::{Joules, Seconds};
///
/// let mut out = Vec::new();
/// let mut sink = EventSink::new(&mut out, SinkFormat::Jsonl);
/// sink.on_event(&SimEvent::Harvest {
///     time: Seconds::new(60.0),
///     energy: Joules::new(0.25),
/// });
/// drop(sink);
/// assert_eq!(
///     String::from_utf8(out).unwrap(),
///     "{\"t\":60,\"event\":\"harvest\",\"energy_j\":0.25}\n"
/// );
/// ```
#[derive(Debug)]
pub struct EventSink<W: std::io::Write> {
    writer: W,
    format: SinkFormat,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> EventSink<W> {
    /// Creates a sink; the CSV variant writes its header immediately.
    pub fn new(mut writer: W, format: SinkFormat) -> Self {
        let mut error = None;
        if format == SinkFormat::Csv {
            error = writeln!(writer, "time_s,event,v1,v2,v3,v4").err();
        }
        Self {
            writer,
            format,
            written: 0,
            error,
        }
    }

    /// Events successfully written (excluding the CSV header).
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flushes the underlying writer, recording the first error.
    pub fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.error.get_or_insert(e);
        }
    }
}

impl<W: std::io::Write> SimObserver for EventSink<W> {
    fn on_event(&mut self, event: &SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = match self.format {
            SinkFormat::Csv => event.to_csv_row(),
            SinkFormat::Jsonl => event.to_jsonl(),
        };
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: std::io::Write> Drop for EventSink<W> {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Bridges the event stream into a [`MetricsRegistry`]: cumulative
/// energy counters per flow (`sim_harvested_joules_total`, charge,
/// discharge, conversion loss, overhead, shortfall), step/window/fault
/// counters, duty and stored-energy gauges, and a per-window harvest
/// histogram.
///
/// Every series is interned into a pre-resolved handle at construction,
/// so the per-event cost is one O(1) slot update — no name hashing, no
/// label allocation, no map walk on the hot path. The series therefore
/// exist (at zero) from the moment the observer is built.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    window_harvest: f64,
    windows: CounterHandle,
    duty: GaugeHandle,
    stored: GaugeHandle,
    policy_changes: CounterHandle,
    steps: CounterHandle,
    harvested: CounterHandle,
    conversion_loss: CounterHandle,
    overhead: CounterHandle,
    charged: CounterHandle,
    discharged: CounterHandle,
    shortfall: CounterHandle,
    brownout_steps: CounterHandle,
    faults: CounterHandle,
    lost_capacity: CounterHandle,
    fault_clears: CounterHandle,
    restored_capacity: CounterHandle,
    failovers: CounterHandle,
    window_harvest_hist: HistogramHandle,
}

impl MetricsObserver {
    /// Creates the observer, interning every series it will write.
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        Self {
            windows: registry.handle_counter("sim_windows_total", &[]),
            duty: registry.handle_gauge("sim_duty_cycle", &[]),
            stored: registry.handle_gauge("sim_stored_joules", &[]),
            policy_changes: registry.handle_counter("sim_policy_changes_total", &[]),
            steps: registry.handle_counter("sim_steps_total", &[]),
            harvested: registry.handle_counter("sim_harvested_joules_total", &[]),
            conversion_loss: registry.handle_counter("sim_conversion_loss_joules_total", &[]),
            overhead: registry.handle_counter("sim_overhead_joules_total", &[]),
            charged: registry.handle_counter("sim_charged_joules_total", &[]),
            discharged: registry.handle_counter("sim_discharged_joules_total", &[]),
            shortfall: registry.handle_counter("sim_shortfall_joules_total", &[]),
            brownout_steps: registry.handle_counter("sim_brownout_steps_total", &[]),
            faults: registry.handle_counter("sim_faults_total", &[]),
            lost_capacity: registry.handle_counter("sim_lost_capacity_joules_total", &[]),
            fault_clears: registry.handle_counter("sim_fault_clears_total", &[]),
            restored_capacity: registry.handle_counter("sim_restored_capacity_joules_total", &[]),
            failovers: registry.handle_counter("sim_failovers_total", &[]),
            window_harvest_hist: registry.handle_histogram("sim_window_harvest_joules", &[]),
            registry,
            window_harvest: 0.0,
        }
    }

    /// Reads the registry accumulated so far.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Consumes the observer, returning its registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }

    /// Folds a batch's worth of step-event sums into the registry.
    fn flush_steps(&mut self, acc: StepAccumulator) {
        if acc.steps == 0.0 {
            return;
        }
        self.registry.counter_add_handle(self.steps, acc.steps);
        self.registry
            .counter_add_handle(self.harvested, acc.harvested);
        self.window_harvest += acc.harvested;
        self.registry
            .counter_add_handle(self.conversion_loss, acc.converter);
        self.registry
            .counter_add_handle(self.overhead, acc.overhead);
        self.registry.counter_add_handle(self.charged, acc.charged);
        self.registry
            .counter_add_handle(self.discharged, acc.discharged);
        self.registry
            .counter_add_handle(self.shortfall, acc.shortfall);
        self.registry
            .counter_add_handle(self.brownout_steps, acc.brownouts);
    }
}

/// Local sums of one batch's step events, flushed to the registry in a
/// single round of handle updates.
#[derive(Default)]
struct StepAccumulator {
    steps: f64,
    harvested: f64,
    converter: f64,
    overhead: f64,
    charged: f64,
    discharged: f64,
    shortfall: f64,
    brownouts: f64,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl SimObserver for MetricsObserver {
    // One direct match instead of the default hook dispatch: the per-step
    // events (harvest, conversion loss, charge/discharge) dominate, and
    // each lands on a handle update. Inline so a statically-dispatched
    // wrapper (e.g. `Tandem`) absorbs the whole body.
    #[inline]
    fn on_event(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::Harvest { energy, .. } => {
                self.registry.counter_add_handle(self.steps, 1.0);
                self.registry
                    .counter_add_handle(self.harvested, energy.value());
                self.window_harvest += energy.value();
            }
            SimEvent::ConversionLoss {
                converter,
                overhead,
                ..
            } => {
                self.registry
                    .counter_add_handle(self.conversion_loss, converter.value());
                self.registry
                    .counter_add_handle(self.overhead, overhead.value());
            }
            SimEvent::StoreCharge { energy, .. } => {
                self.registry
                    .counter_add_handle(self.charged, energy.value());
            }
            SimEvent::StoreDischarge { energy, .. } => {
                self.registry
                    .counter_add_handle(self.discharged, energy.value());
            }
            SimEvent::Shortfall { energy, .. } => {
                self.registry
                    .counter_add_handle(self.shortfall, energy.value());
                self.registry.counter_add_handle(self.brownout_steps, 1.0);
            }
            SimEvent::WindowStart { duty, stored, .. } => {
                self.registry.counter_add_handle(self.windows, 1.0);
                self.registry.gauge_set_handle(self.duty, duty.value());
                self.registry.gauge_set_handle(self.stored, stored.value());
                self.window_harvest = 0.0;
            }
            SimEvent::WindowEnd { stored, .. } => {
                self.registry.gauge_set_handle(self.stored, stored.value());
                self.registry
                    .histogram_observe_handle(self.window_harvest_hist, self.window_harvest);
            }
            SimEvent::PolicyChange { .. } => {
                self.registry.counter_add_handle(self.policy_changes, 1.0);
            }
            SimEvent::FaultFire { lost_capacity, .. } => {
                self.registry.counter_add_handle(self.faults, 1.0);
                self.registry
                    .counter_add_handle(self.lost_capacity, lost_capacity.value());
            }
            SimEvent::FaultClear {
                restored_capacity, ..
            } => {
                self.registry.counter_add_handle(self.fault_clears, 1.0);
                self.registry
                    .counter_add_handle(self.restored_capacity, restored_capacity.value());
            }
            SimEvent::FailoverEngaged { .. } => {
                self.registry.counter_add_handle(self.failovers, 1.0);
            }
            SimEvent::RunStart { .. } | SimEvent::RunEnd { .. } => {}
        }
    }

    // Sum the window's records in locals and land them with one round
    // of handle updates. Counter totals match per-event updates up to
    // floating-point association (count-valued counters exactly).
    // Charge/discharge are summed unconditionally: the runner's events
    // gate on `> 0`, and adding a zero leaves the same sum.
    #[inline]
    fn on_step_records(&mut self, records: &[StepEnergies]) {
        let mut acc = StepAccumulator::default();
        for r in records {
            acc.steps += 1.0;
            acc.harvested += r.harvested.value();
            acc.converter += r.converter_loss.value();
            acc.overhead += r.overhead.value();
            acc.charged += r.charged.value();
            acc.discharged += r.discharged.value();
            if r.shortfall.value() > 0.0 {
                acc.shortfall += r.shortfall.value();
                acc.brownouts += 1.0;
            }
        }
        self.flush_steps(acc);
    }
}

/// The floor applied to a window's energy turnover when normalizing the
/// residual, so near-idle windows (turnover → 0) don't divide floating
/// point dust by itself and report phantom violations.
const MIN_WINDOW_ENERGY: f64 = 1e-9;

/// Summary of a [`ConservationAuditor`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditReport {
    /// Control windows audited.
    pub windows: u64,
    /// Largest absolute per-window residual, in joules.
    pub worst_residual: Joules,
    /// That residual as a fraction of its window's energy turnover.
    pub worst_relative: f64,
    /// Start time of the worst window.
    pub worst_at: Seconds,
}

impl AuditReport {
    /// Whether every audited window closed within `tolerance`
    /// (relative to window energy).
    pub fn conserved_within(&self, tolerance: f64) -> bool {
        self.worst_relative <= tolerance
    }
}

impl core::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "audited {} windows; worst residual {:.3e} J ({:.3e} of window energy) at t = {}",
            self.windows,
            self.worst_residual.value(),
            self.worst_relative,
            self.worst_at,
        )
    }
}

/// An observer that cross-checks the storage conservation identity
/// every control window:
///
/// ```text
/// charged − discharged − Δlosses − Δstored ≈ 0
/// ```
///
/// which — since every harvested joule either charges a store, serves
/// the load/overheads, spills, or dies in a converter — is the
/// windowed form of *harvested − losses − consumed − Δstored ≈ 0* with
/// the unobservable bus terms cancelled out. The worst residual,
/// normalized by the window's energy turnover, is tracked with its
/// timestamp; anything above ~1e-6 means a model is leaking or minting
/// energy.
#[derive(Debug, Clone, Default)]
pub struct ConservationAuditor {
    start_stored: f64,
    start_losses: f64,
    window_start: f64,
    win_charged: f64,
    win_discharged: f64,
    win_harvested: f64,
    win_converter: f64,
    win_overhead: f64,
    in_window: bool,
    windows: u64,
    worst_residual: f64,
    worst_relative: f64,
    worst_at: f64,
}

impl ConservationAuditor {
    /// Creates an auditor with no windows seen.
    pub fn new() -> Self {
        Self::default()
    }

    /// The audit summary so far.
    pub fn report(&self) -> AuditReport {
        AuditReport {
            windows: self.windows,
            worst_residual: Joules::new(self.worst_residual),
            worst_relative: self.worst_relative,
            worst_at: Seconds::new(self.worst_at),
        }
    }
}

impl SimObserver for ConservationAuditor {
    fn on_window_start(
        &mut self,
        time: Seconds,
        _duty: DutyCycle,
        _load: Watts,
        stored: Joules,
        losses: Joules,
    ) {
        self.start_stored = stored.value();
        self.start_losses = losses.value();
        self.window_start = time.value();
        self.win_charged = 0.0;
        self.win_discharged = 0.0;
        self.win_harvested = 0.0;
        self.win_converter = 0.0;
        self.win_overhead = 0.0;
        self.in_window = true;
    }

    fn on_harvest(&mut self, _time: Seconds, energy: Joules) {
        self.win_harvested += energy.value();
    }

    fn on_conversion_loss(&mut self, _time: Seconds, converter: Joules, overhead: Joules) {
        self.win_converter += converter.value();
        self.win_overhead += overhead.value();
    }

    fn on_store_charge(&mut self, _time: Seconds, energy: Joules) {
        self.win_charged += energy.value();
    }

    fn on_store_discharge(&mut self, _time: Seconds, energy: Joules) {
        self.win_discharged += energy.value();
    }

    // Branchless window sums: the per-event path gates charge/discharge
    // on `> 0`, and adding the zeroes those gates skip leaves the same
    // sums.
    #[inline]
    fn on_step_records(&mut self, records: &[StepEnergies]) {
        let mut harvested = 0.0;
        let mut converter = 0.0;
        let mut overhead = 0.0;
        let mut charged = 0.0;
        let mut discharged = 0.0;
        for r in records {
            harvested += r.harvested.value();
            converter += r.converter_loss.value();
            overhead += r.overhead.value();
            charged += r.charged.value();
            discharged += r.discharged.value();
        }
        self.win_harvested += harvested;
        self.win_converter += converter;
        self.win_overhead += overhead;
        self.win_charged += charged;
        self.win_discharged += discharged;
    }

    fn on_window_end(&mut self, _time: Seconds, stored: Joules, losses: Joules) {
        if !self.in_window {
            return;
        }
        self.in_window = false;
        let d_stored = stored.value() - self.start_stored;
        let d_losses = losses.value() - self.start_losses;
        let residual = self.win_charged - self.win_discharged - d_losses - d_stored;
        // Normalize by the window's energy turnover; idle self-discharge
        // moves Δstored/Δlosses without any charge/discharge flow, so
        // those deltas count as turnover too (otherwise their fp dust
        // would be divided by ~nothing and read as a violation).
        let window_energy = (self.win_harvested
            + self.win_charged
            + self.win_discharged
            + self.win_converter
            + self.win_overhead)
            .max(d_stored.abs() + d_losses.abs())
            .max(MIN_WINDOW_ENERGY);
        let relative = residual.abs() / window_energy;
        self.windows += 1;
        if relative > self.worst_relative {
            self.worst_relative = relative;
            self.worst_residual = residual.abs();
            self.worst_at = self.window_start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harvest_at(t: f64, e: f64) -> SimEvent {
        SimEvent::Harvest {
            time: Seconds::new(t),
            energy: Joules::new(e),
        }
    }

    #[test]
    fn ring_recorder_keeps_the_newest() {
        let mut ring = RingRecorder::new(3);
        assert!(ring.is_empty());
        for i in 0..5 {
            ring.on_event(&harvest_at(i as f64, i as f64));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 5);
        assert_eq!(ring.capacity(), 3);
        let times: Vec<f64> = ring.events().iter().map(|e| e.time().value()).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ring capacity")]
    fn ring_rejects_zero_capacity() {
        RingRecorder::new(0);
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let mut out = Vec::new();
        let mut sink = EventSink::new(&mut out, SinkFormat::Csv);
        sink.on_event(&harvest_at(60.0, 0.5));
        sink.on_event(&SimEvent::PolicyChange {
            time: Seconds::new(600.0),
            from: DutyCycle::saturating(0.1),
            to: DutyCycle::saturating(0.2),
        });
        assert_eq!(sink.written(), 2);
        assert!(sink.error().is_none());
        drop(sink);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time_s,event,v1,v2,v3,v4");
        assert_eq!(lines[1], "60,harvest,0.5,,,");
        assert_eq!(lines[2], "600,policy_change,0.1,0.2,,");
    }

    #[test]
    fn jsonl_sink_round_trips_fields() {
        let mut out = Vec::new();
        let mut sink = EventSink::new(&mut out, SinkFormat::Jsonl);
        sink.on_event(&SimEvent::WindowEnd {
            time: Seconds::new(600.0),
            stored: Joules::new(12.5),
            losses: Joules::new(0.25),
        });
        drop(sink);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text.trim(),
            "{\"t\":600,\"event\":\"window_end\",\"stored_j\":12.5,\"losses_j\":0.25}"
        );
    }

    #[test]
    fn metrics_observer_accumulates_flows() {
        let mut m = MetricsObserver::new();
        m.on_event(&SimEvent::WindowStart {
            time: Seconds::ZERO,
            duty: DutyCycle::saturating(0.1),
            load: Watts::from_milli(1.0),
            stored: Joules::new(10.0),
            losses: Joules::ZERO,
        });
        m.on_event(&harvest_at(0.0, 0.5));
        m.on_event(&harvest_at(60.0, 0.25));
        m.on_event(&SimEvent::StoreCharge {
            time: Seconds::ZERO,
            energy: Joules::new(0.3),
        });
        m.on_event(&SimEvent::WindowEnd {
            time: Seconds::new(120.0),
            stored: Joules::new(10.3),
            losses: Joules::ZERO,
        });
        let r = m.registry();
        assert_eq!(r.counter("sim_steps_total", &[]), Some(2.0));
        assert_eq!(r.counter("sim_harvested_joules_total", &[]), Some(0.75));
        assert_eq!(r.counter("sim_charged_joules_total", &[]), Some(0.3));
        assert_eq!(r.gauge("sim_stored_joules", &[]), Some(10.3));
        let h = r.histogram("sim_window_harvest_joules", &[]).unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 0.75);
    }

    #[test]
    fn auditor_flags_a_leaky_window() {
        let mut a = ConservationAuditor::new();
        // Window 1: books balance (charged 1 J, stored rose 1 J).
        a.on_event(&SimEvent::WindowStart {
            time: Seconds::ZERO,
            duty: DutyCycle::saturating(0.1),
            load: Watts::ZERO,
            stored: Joules::new(5.0),
            losses: Joules::ZERO,
        });
        a.on_event(&harvest_at(0.0, 1.0));
        a.on_event(&SimEvent::StoreCharge {
            time: Seconds::ZERO,
            energy: Joules::new(1.0),
        });
        a.on_event(&SimEvent::WindowEnd {
            time: Seconds::new(600.0),
            stored: Joules::new(6.0),
            losses: Joules::ZERO,
        });
        assert!(a.report().conserved_within(1e-9));

        // Window 2: claims 1 J charged but stored only rose 0.5 J and no
        // losses explain the gap — half a joule vanished.
        a.on_event(&SimEvent::WindowStart {
            time: Seconds::new(600.0),
            duty: DutyCycle::saturating(0.1),
            load: Watts::ZERO,
            stored: Joules::new(6.0),
            losses: Joules::ZERO,
        });
        a.on_event(&harvest_at(600.0, 1.0));
        a.on_event(&SimEvent::StoreCharge {
            time: Seconds::new(600.0),
            energy: Joules::new(1.0),
        });
        a.on_event(&SimEvent::WindowEnd {
            time: Seconds::new(1200.0),
            stored: Joules::new(6.5),
            losses: Joules::ZERO,
        });
        let report = a.report();
        assert_eq!(report.windows, 2);
        assert!(!report.conserved_within(1e-6), "{report}");
        assert!((report.worst_residual.value() - 0.5).abs() < 1e-12);
        assert_eq!(report.worst_at, Seconds::new(600.0));
        assert!(report.to_string().contains("2 windows"));
    }

    #[test]
    fn auditor_survives_idle_leakage() {
        // Self-discharge: stored falls, losses rise equally — conserved.
        let mut a = ConservationAuditor::new();
        a.on_event(&SimEvent::WindowStart {
            time: Seconds::ZERO,
            duty: DutyCycle::ZERO,
            load: Watts::ZERO,
            stored: Joules::new(5.0),
            losses: Joules::new(0.1),
        });
        a.on_event(&SimEvent::WindowEnd {
            time: Seconds::new(600.0),
            stored: Joules::new(4.8),
            losses: Joules::new(0.3),
        });
        assert!(a.report().conserved_within(1e-12));
    }
}
