//! A zero-dependency metrics registry: labeled counters, gauges and
//! histograms, snapshotable to JSON and mergeable across workers.
//!
//! The registry is the numeric half of the observability layer (the
//! event half is [`crate::SimObserver`]): anything that wants to report
//! "where the joules went" — the runner, the ensemble pool, a platform's
//! quiescent ledger — writes named series here, and a single
//! [`MetricsRegistry::snapshot_json`] call serializes the lot for
//! dashboards or regression diffing.
//!
//! Determinism: the registry stores series in a [`BTreeMap`], so
//! iteration, snapshots and [`PartialEq`] comparisons are independent
//! of insertion order, and [`MetricsRegistry::merge`] applied in a
//! fixed order (seed order, in the ensemble) gives bit-identical
//! results at any worker count.
//!
//! # Examples
//!
//! ```
//! use mseh_sim::MetricsRegistry;
//!
//! let mut m = MetricsRegistry::new();
//! m.counter_add("sim_steps_total", &[("system", "C")], 1440.0);
//! m.gauge_set("store_soc", &[], 0.83);
//! m.histogram_observe("window_residual_j", &[], 3.2e-13);
//! assert_eq!(m.counter("sim_steps_total", &[("system", "C")]), Some(1440.0));
//! let json = m.snapshot_json();
//! assert!(json.contains("\"sim_steps_total\""));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default histogram bucket upper bounds: decades from 1 n(unit) to
/// 1 M(unit), a span that covers per-window joule residuals as well as
/// harvest energies without configuration.
pub const DEFAULT_BUCKETS: [f64; 16] = [
    1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6,
];

/// A series key: metric name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        labels.sort();
        Self {
            name: name.to_owned(),
            labels,
        }
    }
}

/// A cumulative histogram: counts per upper-bound bucket plus running
/// count/sum/min/max.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending; observations above
    /// the last bound land in the implicit `+Inf` overflow.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (same length as `bounds`, plus the
    /// overflow in [`HistogramSnapshot::overflow`]).
    pub counts: Vec<u64>,
    /// Observations beyond the last bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation (`+Inf` when empty).
    pub min: f64,
    /// Largest observation (`-Inf` when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, v: f64) {
        // Binary search instead of a linear scan: bounds are ascending,
        // and `partition_point(b < v)` lands on the first bucket whose
        // (inclusive) upper bound admits `v`. NaN compares false against
        // the last bound and falls into the overflow, matching the old
        // linear scan.
        match self.bounds.last() {
            Some(&last) if v <= last => {
                let i = self.bounds.partition_point(|&b| b < v);
                self.counts[i] += 1;
            }
            _ => self.overflow += 1,
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A typed slot reference: which arena a series lives in, and where.
/// Storage is split per type so the handle paths are plain indexed f64
/// operations with no discriminant to re-check on every update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotRef {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

impl SlotRef {
    fn type_name(self) -> &'static str {
        match self {
            SlotRef::Counter(_) => "counter",
            SlotRef::Gauge(_) => "gauge",
            SlotRef::Histogram(_) => "histogram",
        }
    }
}

/// A pre-resolved handle to a counter series — one name/label resolution
/// at registration, O(1) array indexing on every update. Handles stay
/// valid for the life of the registry they came from (series are never
/// removed) but must not be used against a different registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// A pre-resolved handle to a gauge series; see [`CounterHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// A pre-resolved handle to a histogram series; see [`CounterHandle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// A registry of labeled metric series. See the [module docs](self).
///
/// Series live in a flat slot vector; the [`BTreeMap`] only maps keys to
/// slot indices. Name-based methods pay one map lookup per call; the
/// handle methods ([`handle_counter`](Self::handle_counter) and friends)
/// resolve the key once and index directly thereafter — the hot-path
/// interface for per-step observers.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    index: BTreeMap<SeriesKey, SlotRef>,
    counters: Vec<f64>,
    gauges: Vec<f64>,
    histograms: Vec<HistogramSnapshot>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct series.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the registry holds no series.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Resolves (creating if absent) the slot for `name`/`labels`.
    fn slot(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce(&mut Self) -> SlotRef,
    ) -> SlotRef {
        if let Some(&slot) = self.index.get(&SeriesKey::new(name, labels)) {
            return slot;
        }
        let slot = make(self);
        self.index.insert(SeriesKey::new(name, labels), slot);
        slot
    }

    fn new_counter(&mut self) -> SlotRef {
        self.counters.push(0.0);
        SlotRef::Counter(self.counters.len() - 1)
    }

    fn new_gauge(&mut self) -> SlotRef {
        self.gauges.push(0.0);
        SlotRef::Gauge(self.gauges.len() - 1)
    }

    /// Pre-resolves a counter series (creating it at zero if absent) and
    /// returns its O(1) handle.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn handle_counter(&mut self, name: &str, labels: &[(&str, &str)]) -> CounterHandle {
        match self.slot(name, labels, Self::new_counter) {
            SlotRef::Counter(i) => CounterHandle(i),
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Pre-resolves a gauge series (creating it at zero if absent) and
    /// returns its O(1) handle.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn handle_gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> GaugeHandle {
        match self.slot(name, labels, Self::new_gauge) {
            SlotRef::Gauge(i) => GaugeHandle(i),
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Pre-resolves a histogram series (creating it with
    /// [`DEFAULT_BUCKETS`] if absent) and returns its O(1) handle.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn handle_histogram(&mut self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        let slot = self.slot(name, labels, |me| {
            me.histograms
                .push(HistogramSnapshot::new(DEFAULT_BUCKETS.to_vec()));
            SlotRef::Histogram(me.histograms.len() - 1)
        });
        match slot {
            SlotRef::Histogram(i) => HistogramHandle(i),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Adds `v` to the counter behind `h` without any name resolution —
    /// a single indexed f64 add. Monotonicity (`v >= 0`) is checked in
    /// debug builds; handles are type-checked at creation, so the slot
    /// is always a counter.
    #[inline]
    pub fn counter_add_handle(&mut self, h: CounterHandle, v: f64) {
        debug_assert!(v >= 0.0, "counter increment must be >= 0, got {v}");
        self.counters[h.0] += v;
    }

    /// Sets the gauge behind `h` without any name resolution.
    #[inline]
    pub fn gauge_set_handle(&mut self, h: GaugeHandle, v: f64) {
        self.gauges[h.0] = v;
    }

    /// Records `v` into the histogram behind `h` without any name
    /// resolution.
    #[inline]
    pub fn histogram_observe_handle(&mut self, h: HistogramHandle, v: f64) {
        self.histograms[h.0].observe(v);
    }

    /// Adds `v` to a counter, creating it at zero first if absent.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative (counters are monotonic) or the series
    /// exists with a different type.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        assert!(v >= 0.0, "counter {name} increment must be >= 0, got {v}");
        match self.slot(name, labels, Self::new_counter) {
            SlotRef::Counter(i) => self.counters[i] += v,
            other => panic!("metric {name} is a {}, not a counter", other.type_name()),
        }
    }

    /// Sets a gauge to `v`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        match self.slot(name, labels, Self::new_gauge) {
            SlotRef::Gauge(i) => self.gauges[i] = v,
            other => panic!("metric {name} is a {}, not a gauge", other.type_name()),
        }
    }

    /// Records `v` into a histogram with [`DEFAULT_BUCKETS`], creating
    /// it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type.
    pub fn histogram_observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.histogram_observe_with(name, labels, v, &DEFAULT_BUCKETS);
    }

    /// Records `v` into a histogram, creating it with the given bucket
    /// bounds if absent (bounds must be ascending).
    ///
    /// # Panics
    ///
    /// Panics if the series exists with a different type, or on
    /// non-ascending `bounds` for a new series.
    pub fn histogram_observe_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        v: f64,
        bounds: &[f64],
    ) {
        let slot = self.slot(name, labels, |me| {
            assert!(
                bounds.windows(2).all(|w| w[0] < w[1]),
                "histogram {name} bounds must be strictly ascending"
            );
            me.histograms.push(HistogramSnapshot::new(bounds.to_vec()));
            SlotRef::Histogram(me.histograms.len() - 1)
        });
        match slot {
            SlotRef::Histogram(i) => self.histograms[i].observe(v),
            other => panic!("metric {name} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Reads a counter's value.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.index.get(&SeriesKey::new(name, labels)) {
            Some(&SlotRef::Counter(i)) => Some(self.counters[i]),
            _ => None,
        }
    }

    /// Reads a gauge's value.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.index.get(&SeriesKey::new(name, labels)) {
            Some(&SlotRef::Gauge(i)) => Some(self.gauges[i]),
            _ => None,
        }
    }

    /// Reads a histogram's snapshot.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.index.get(&SeriesKey::new(name, labels)) {
            Some(&SlotRef::Histogram(i)) => Some(&self.histograms[i]),
            _ => None,
        }
    }

    /// Merges another registry into this one: counters add, gauges take
    /// `other`'s value (last writer wins — merge in a fixed order for
    /// determinism), histograms combine bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if a series exists in both registries with mismatched
    /// types or histogram bounds.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (key, &theirs) in &other.index {
            let mine = match self.index.get(key) {
                Some(&slot) => slot,
                None => {
                    let slot = match theirs {
                        SlotRef::Counter(j) => {
                            self.counters.push(other.counters[j]);
                            SlotRef::Counter(self.counters.len() - 1)
                        }
                        SlotRef::Gauge(j) => {
                            self.gauges.push(other.gauges[j]);
                            SlotRef::Gauge(self.gauges.len() - 1)
                        }
                        SlotRef::Histogram(j) => {
                            self.histograms.push(other.histograms[j].clone());
                            SlotRef::Histogram(self.histograms.len() - 1)
                        }
                    };
                    self.index.insert(key.clone(), slot);
                    continue;
                }
            };
            match (mine, theirs) {
                (SlotRef::Counter(i), SlotRef::Counter(j)) => {
                    self.counters[i] += other.counters[j];
                }
                (SlotRef::Gauge(i), SlotRef::Gauge(j)) => {
                    self.gauges[i] = other.gauges[j];
                }
                (SlotRef::Histogram(i), SlotRef::Histogram(j)) => {
                    let (a, b) = (&mut self.histograms[i], &other.histograms[j]);
                    assert_eq!(
                        a.bounds, b.bounds,
                        "merging histogram {} with mismatched buckets",
                        key.name
                    );
                    for (c, d) in a.counts.iter_mut().zip(&b.counts) {
                        *c += d;
                    }
                    a.overflow += b.overflow;
                    a.count += b.count;
                    a.sum += b.sum;
                    a.min = a.min.min(b.min);
                    a.max = a.max.max(b.max);
                }
                (mine, theirs) => panic!(
                    "merging metric {} as {} into {}",
                    key.name,
                    theirs.type_name(),
                    mine.type_name()
                ),
            }
        }
    }

    /// Serializes every series to a deterministic JSON document:
    ///
    /// ```json
    /// {"metrics":[
    ///   {"name":"...","labels":{...},"type":"counter","value":1.0},
    ///   {"name":"...","labels":{},"type":"histogram","count":3,"sum":0.5,
    ///    "min":0.1,"max":0.3,"buckets":[{"le":1e-9,"count":0}, ...],"overflow":0}
    /// ]}
    /// ```
    pub fn snapshot_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.index.len() * 96);
        out.push_str("{\"metrics\":[");
        for (i, (key, &slot)) in self.index.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_str(&mut out, &key.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                push_json_str(&mut out, v);
            }
            out.push_str("},\"type\":\"");
            out.push_str(slot.type_name());
            out.push('"');
            match slot {
                SlotRef::Counter(j) | SlotRef::Gauge(j) => {
                    let v = match slot {
                        SlotRef::Counter(_) => self.counters[j],
                        _ => self.gauges[j],
                    };
                    let _ = write!(out, ",\"value\":{}", json_num(v));
                }
                SlotRef::Histogram(j) => {
                    let h = &self.histograms[j];
                    let _ = write!(
                        out,
                        ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                        h.count,
                        json_num(h.sum),
                        json_num(h.min),
                        json_num(h.max)
                    );
                    for (j, (&le, &count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{{\"le\":{},\"count\":{count}}}", json_num(le));
                    }
                    let _ = write!(out, "],\"overflow\":{}", h.overflow);
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Equality is logical — same keyed series with equal contents — and
/// independent of slot numbering, so a registry built in a different
/// insertion order still compares equal (the determinism tests rely on
/// this, as they did with the old key-to-series map).
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.index.len() == other.index.len()
            && self
                .index
                .iter()
                .zip(&other.index)
                .all(|((ka, &sa), (kb, &sb))| {
                    ka == kb
                        && match (sa, sb) {
                            (SlotRef::Counter(i), SlotRef::Counter(j)) => {
                                self.counters[i] == other.counters[j]
                            }
                            (SlotRef::Gauge(i), SlotRef::Gauge(j)) => {
                                self.gauges[i] == other.gauges[j]
                            }
                            (SlotRef::Histogram(i), SlotRef::Histogram(j)) => {
                                self.histograms[i] == other.histograms[j]
                            }
                            _ => false,
                        }
                })
    }
}

/// Formats a float as a JSON-legal number (JSON has no Inf/NaN; those
/// serialize as null).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let mut m = MetricsRegistry::new();
        m.counter_add("steps", &[("system", "A")], 2.0);
        m.counter_add("steps", &[("system", "A")], 3.0);
        m.counter_add("steps", &[("system", "B")], 7.0);
        assert_eq!(m.counter("steps", &[("system", "A")]), Some(5.0));
        assert_eq!(m.counter("steps", &[("system", "B")]), Some(7.0));
        assert_eq!(m.counter("steps", &[]), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", &[("a", "1"), ("b", "2")], 1.0);
        m.counter_add("x", &[("b", "2"), ("a", "1")], 1.0);
        assert_eq!(m.counter("x", &[("b", "2"), ("a", "1")]), Some(2.0));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("soc", &[], 0.4);
        m.gauge_set("soc", &[], 0.9);
        assert_eq!(m.gauge("soc", &[]), Some(0.9));
    }

    #[test]
    fn histograms_bucket_and_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [1e-8, 2e-8, 0.5, 2e7] {
            m.histogram_observe("residual", &[], v);
        }
        let h = m.histogram("residual", &[]).unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.overflow, 1); // 2e7 beyond the last decade
        assert_eq!(h.min, 1e-8);
        assert_eq!(h.max, 2e7);
        assert!((h.mean() - (1e-8 + 2e-8 + 0.5 + 2e7) / 4.0).abs() < 1.0);
        // 1e-8 lands in the `le = 1e-8` bucket (inclusive upper bound).
        assert_eq!(h.counts[1], 1);
    }

    #[test]
    fn merge_is_typewise() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", &[], 1.0);
        a.gauge_set("g", &[], 5.0);
        a.histogram_observe("h", &[], 0.5);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", &[], 2.0);
        b.gauge_set("g", &[], 7.0);
        b.histogram_observe("h", &[], 2.5);
        b.counter_add("only_b", &[], 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c", &[]), Some(3.0));
        assert_eq!(a.gauge("g", &[]), Some(7.0));
        assert_eq!(a.counter("only_b", &[]), Some(9.0));
        let h = a.histogram("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 3.0);
    }

    #[test]
    fn merge_order_determinism_for_counters() {
        // Counters commute: any merge order gives the same registry.
        let regs: Vec<MetricsRegistry> = (1..=4)
            .map(|i| {
                let mut m = MetricsRegistry::new();
                m.counter_add("steps", &[], i as f64);
                m.histogram_observe("e", &[], i as f64);
                m
            })
            .collect();
        let mut fwd = MetricsRegistry::new();
        for r in &regs {
            fwd.merge(r);
        }
        let mut rev = MetricsRegistry::new();
        for r in regs.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_escaped() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("quirky \"name\"", &[("sys\n", "a\\b")], 1.5);
        m.counter_add("steps", &[], 3.0);
        let json = m.snapshot_json();
        assert_eq!(json, m.clone().snapshot_json());
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains("\\\"name\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"type\":\"counter\",\"value\":3"));
        // Series are name-ordered regardless of insertion order.
        assert!(json.find("quirky").unwrap() < json.find("steps").unwrap());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("x", &[], 1.0);
        m.counter_add("x", &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn counters_are_monotonic() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", &[], -1.0);
    }

    #[test]
    fn empty_registry_snapshot() {
        let m = MetricsRegistry::new();
        assert!(m.is_empty());
        assert_eq!(m.snapshot_json(), "{\"metrics\":[]}");
    }

    #[test]
    fn handles_address_the_same_series_as_names() {
        let mut m = MetricsRegistry::new();
        m.counter_add("steps", &[("system", "C")], 2.0);
        let c = m.handle_counter("steps", &[("system", "C")]);
        let g = m.handle_gauge("soc", &[]);
        let h = m.handle_histogram("residual", &[]);
        m.counter_add_handle(c, 3.0);
        m.gauge_set_handle(g, 0.7);
        m.histogram_observe_handle(h, 1e-7);
        assert_eq!(m.counter("steps", &[("system", "C")]), Some(5.0));
        assert_eq!(m.gauge("soc", &[]), Some(0.7));
        assert_eq!(m.histogram("residual", &[]).unwrap().count, 1);
        // Name-based writes keep flowing into the handled series.
        m.histogram_observe("residual", &[], 0.5);
        assert_eq!(m.histogram("residual", &[]).unwrap().count, 2);
    }

    #[test]
    fn equality_ignores_slot_numbering() {
        let mut a = MetricsRegistry::new();
        a.counter_add("x", &[], 1.0);
        a.gauge_set("y", &[], 2.0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("y", &[], 2.0);
        b.counter_add("x", &[], 1.0);
        assert_eq!(a, b);
        b.counter_add("x", &[], 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn binary_bucketing_matches_linear_semantics() {
        let mut m = MetricsRegistry::new();
        // Exactly on a bound (inclusive), just above, well below the
        // first bound, and NaN (overflow, as before).
        for v in [1e-6, 1.000_000_1e-6, 1e-12, f64::NAN] {
            m.histogram_observe("h", &[], v);
        }
        let h = m.histogram("h", &[]).unwrap();
        assert_eq!(h.counts[3], 1); // 1e-6 bound, inclusive
        assert_eq!(h.counts[4], 1); // next decade up
        assert_eq!(h.counts[0], 1); // below the first bound
        assert_eq!(h.overflow, 1); // NaN
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn handle_resolution_checks_types() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", &[], 1.0);
        m.handle_gauge("x", &[]);
    }
}
