//! Seed ensembles: run the same scenario across many environment seeds
//! and summarize the spread — the robustness check behind every claim in
//! `EXPERIMENTS.md`.

use crate::metrics::MetricsRegistry;
use crate::observe::{AuditReport, ConservationAuditor, MetricsObserver};
use crate::parallel::{par_map_instrumented, par_map_with, thread_count};
use crate::platform::Platform;
use crate::runner::{run_simulation, run_simulation_observed, SimConfig, SimResult};
use mseh_env::Environment;
use mseh_node::{DutyCyclePolicy, SensorNode};

/// Summary statistics of one metric across an ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// Ensemble mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Sample standard deviation (0 for a single observation).
    pub std_dev: f64,
    /// Median (mean of the two central observations for even counts).
    pub median: f64,
}

impl Spread {
    /// Summarizes a non-empty slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = mseh_sim::Spread::of(&[1.0, 2.0, 3.0, 10.0]);
    /// assert_eq!(s.mean, 4.0);
    /// assert_eq!(s.median, 2.5);
    /// assert!(s.std_dev > 0.0);
    /// ```
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "need at least one observation");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let std_dev = if values.len() < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            var.sqrt()
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            0.5 * (sorted[mid - 1] + sorted[mid])
        };
        Self {
            mean,
            min,
            max,
            std_dev,
            median,
        }
    }
}

/// Ensemble results across seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSummary {
    /// Seeds used.
    pub seeds: Vec<u64>,
    /// Harvested energy (J) across seeds.
    pub harvested: Spread,
    /// Uptime fraction across seeds.
    pub uptime: Spread,
    /// Data samples across seeds.
    pub samples: Spread,
    /// The individual runs, seed-aligned.
    pub runs: Vec<SimResult>,
}

/// Runs the scenario once per seed — fanned out across the worker pool
/// ([`thread_count`] threads; `MSEH_THREADS` overrides) — and
/// summarizes.
///
/// `make_platform` builds a fresh platform per run (state must not leak
/// between seeds); `make_env` maps a seed to its environment;
/// `make_policy` builds a fresh policy per run. The factories are
/// shared by reference across workers, hence the `Fn + Sync` bounds.
///
/// Results are seed-aligned and bit-for-bit identical to the sequential
/// path ([`run_seed_ensemble_seq`]) at any thread count: every run is a
/// pure function of its seed, and [`crate::par_map`] preserves order.
///
/// # Panics
///
/// Panics if `seeds` is empty.
///
/// # Examples
///
/// ```
/// use mseh_sim::{run_seed_ensemble, SimConfig};
/// use mseh_core::{PowerUnit, StoreRole, PortRequirement};
/// use mseh_power::DcDcConverter;
/// use mseh_storage::Supercap;
/// use mseh_node::{SensorNode, FixedDuty};
/// use mseh_env::Environment;
/// use mseh_units::{DutyCycle, Seconds, Volts};
///
/// let summary = run_seed_ensemble(
///     &[1, 2, 3],
///     |_seed| {
///         let mut cap = Supercap::edlc_22f();
///         cap.set_voltage(Volts::new(2.5));
///         PowerUnit::builder("ensemble demo")
///             .store_port(
///                 PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
///                 Some(Box::new(cap)), StoreRole::PrimaryBuffer, true)
///             .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
///             .build()
///     },
///     Environment::indoor_office,
///     |_seed| FixedDuty::new(DutyCycle::saturating(0.02)),
///     &SensorNode::submilliwatt_class(),
///     SimConfig::over(Seconds::from_hours(2.0)),
/// );
/// assert_eq!(summary.runs.len(), 3);
/// assert!(summary.uptime.min > 0.9);
/// ```
pub fn run_seed_ensemble<P, F, E, G, Q>(
    seeds: &[u64],
    make_platform: F,
    make_env: E,
    make_policy: G,
    node: &SensorNode,
    config: SimConfig,
) -> EnsembleSummary
where
    P: Platform,
    F: Fn(u64) -> P + Sync,
    E: Fn(u64) -> Environment + Sync,
    G: Fn(u64) -> Q + Sync,
    Q: DutyCyclePolicy,
{
    run_seed_ensemble_with_threads(
        thread_count(),
        seeds,
        make_platform,
        make_env,
        make_policy,
        node,
        config,
    )
}

/// [`run_seed_ensemble`] with an explicit worker count (`1` runs inline
/// on the calling thread).
///
/// # Panics
///
/// Panics if `seeds` is empty or `threads` is zero.
pub fn run_seed_ensemble_with_threads<P, F, E, G, Q>(
    threads: usize,
    seeds: &[u64],
    make_platform: F,
    make_env: E,
    make_policy: G,
    node: &SensorNode,
    config: SimConfig,
) -> EnsembleSummary
where
    P: Platform,
    F: Fn(u64) -> P + Sync,
    E: Fn(u64) -> Environment + Sync,
    G: Fn(u64) -> Q + Sync,
    Q: DutyCyclePolicy,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs = par_map_with(threads, seeds, |&seed| {
        let mut platform = make_platform(seed);
        let env = make_env(seed);
        let mut policy = make_policy(seed);
        run_simulation(&mut platform, &env, node, &mut policy, config)
    });
    summarize(seeds, runs)
}

/// The sequential reference implementation of [`run_seed_ensemble`]:
/// same contract, one run at a time on the calling thread. Accepts
/// `FnMut` factories (they are never shared), so stateful builders that
/// cannot be `Sync` still have an entry point.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_seed_ensemble_seq<P, F, E, G, Q>(
    seeds: &[u64],
    mut make_platform: F,
    mut make_env: E,
    mut make_policy: G,
    node: &SensorNode,
    config: SimConfig,
) -> EnsembleSummary
where
    P: Platform,
    F: FnMut(u64) -> P,
    E: FnMut(u64) -> Environment,
    G: FnMut(u64) -> Q,
    Q: DutyCyclePolicy,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let runs: Vec<SimResult> = seeds
        .iter()
        .map(|&seed| {
            let mut platform = make_platform(seed);
            let env = make_env(seed);
            let mut policy = make_policy(seed);
            run_simulation(&mut platform, &env, node, &mut policy, config)
        })
        .collect();
    summarize(seeds, runs)
}

/// An ensemble run with its observability artifacts: the usual
/// [`EnsembleSummary`] plus the merged [`MetricsRegistry`] across all
/// seeds and a per-seed conservation [`AuditReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct InstrumentedEnsemble {
    /// The ordinary ensemble summary (seed-aligned runs + spreads).
    pub summary: EnsembleSummary,
    /// All seeds' metrics merged in seed order (counters and histograms
    /// sum; gauges keep the last seed's value), so the registry is
    /// identical at any thread count.
    pub metrics: MetricsRegistry,
    /// Conservation audit per seed, seed-aligned.
    pub audits: Vec<AuditReport>,
}

impl InstrumentedEnsemble {
    /// The worst per-window conservation residual across every seed,
    /// as a fraction of that window's energy turnover.
    pub fn worst_audit_relative(&self) -> f64 {
        self.audits
            .iter()
            .map(|a| a.worst_relative)
            .fold(0.0, f64::max)
    }
}

/// [`run_seed_ensemble_with_threads`] with full observability: every
/// run carries a [`MetricsObserver`] and a [`ConservationAuditor`];
/// per-seed registries are merged in seed order (deterministic at any
/// thread count) and the audits come back seed-aligned.
///
/// # Panics
///
/// Panics if `seeds` is empty or `threads` is zero.
///
/// # Examples
///
/// ```
/// use mseh_sim::{run_seed_ensemble_instrumented, SimConfig};
/// use mseh_core::{PowerUnit, StoreRole, PortRequirement};
/// use mseh_power::DcDcConverter;
/// use mseh_storage::Supercap;
/// use mseh_node::{SensorNode, FixedDuty};
/// use mseh_env::Environment;
/// use mseh_units::{DutyCycle, Seconds, Volts};
///
/// let out = run_seed_ensemble_instrumented(
///     2,
///     &[1, 2, 3],
///     |_seed| {
///         let mut cap = Supercap::edlc_22f();
///         cap.set_voltage(Volts::new(2.5));
///         PowerUnit::builder("instrumented demo")
///             .store_port(
///                 PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
///                 Some(Box::new(cap)), StoreRole::PrimaryBuffer, true)
///             .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
///             .build()
///     },
///     Environment::indoor_office,
///     |_seed| FixedDuty::new(DutyCycle::saturating(0.02)),
///     &SensorNode::submilliwatt_class(),
///     SimConfig::over(Seconds::from_hours(2.0)),
/// );
/// assert_eq!(out.audits.len(), 3);
/// assert!(out.worst_audit_relative() < 1e-6);
/// assert!(out.metrics.counter("sim_steps_total", &[]).unwrap() > 0.0);
/// ```
pub fn run_seed_ensemble_instrumented<P, F, E, G, Q>(
    threads: usize,
    seeds: &[u64],
    make_platform: F,
    make_env: E,
    make_policy: G,
    node: &SensorNode,
    config: SimConfig,
) -> InstrumentedEnsemble
where
    P: Platform,
    F: Fn(u64) -> P + Sync,
    E: Fn(u64) -> Environment + Sync,
    G: Fn(u64) -> Q + Sync,
    Q: DutyCyclePolicy,
{
    assert!(!seeds.is_empty(), "need at least one seed");
    let (pairs, metrics) = par_map_instrumented(threads, seeds, |&seed, registry| {
        let mut platform = make_platform(seed);
        let env = make_env(seed);
        let mut policy = make_policy(seed);
        let mut meter = MetricsObserver::new();
        let mut auditor = ConservationAuditor::new();
        let result = run_simulation_observed(
            &mut platform,
            &env,
            node,
            &mut policy,
            config,
            &mut [&mut meter, &mut auditor],
        );
        registry.merge(meter.registry());
        (result, auditor.report())
    });
    let (runs, audits): (Vec<SimResult>, Vec<AuditReport>) = pairs.into_iter().unzip();
    InstrumentedEnsemble {
        summary: summarize(seeds, runs),
        metrics,
        audits,
    }
}

fn summarize(seeds: &[u64], runs: Vec<SimResult>) -> EnsembleSummary {
    let harvested: Vec<f64> = runs.iter().map(|r| r.harvested.value()).collect();
    let uptime: Vec<f64> = runs.iter().map(|r| r.uptime).collect();
    let samples: Vec<f64> = runs.iter().map(|r| r.samples).collect();
    EnsembleSummary {
        seeds: seeds.to_vec(),
        harvested: Spread::of(&harvested),
        uptime: Spread::of(&uptime),
        samples: Spread::of(&samples),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::{PortRequirement, PowerUnit, StoreRole};
    use mseh_node::FixedDuty;
    use mseh_power::{DcDcConverter, FractionalVoc, IdealDiode, InputChannel};
    use mseh_storage::Supercap;
    use mseh_units::{DutyCycle, Seconds, Volts};

    fn solar_rig() -> PowerUnit {
        let channel = InputChannel::new(
            Box::new(mseh_harvesters::PvModule::outdoor_panel_half_watt()),
            Box::new(FractionalVoc::pv_standard()),
            Box::new(IdealDiode::nanopower()),
            Box::new(DcDcConverter::mppt_front_end_5v()),
        );
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(2.0));
        PowerUnit::builder("ensemble rig")
            .harvester_port(
                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                Some(channel),
                true,
            )
            .store_port(
                PortRequirement::any_in_window("cap", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(cap)),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
            .build()
    }

    #[test]
    fn ensemble_spreads_are_consistent() {
        let summary = run_seed_ensemble(
            &[1, 2, 3, 4, 5],
            |_| solar_rig(),
            Environment::outdoor_temperate,
            |_| FixedDuty::new(DutyCycle::saturating(0.05)),
            &mseh_node::SensorNode::submilliwatt_class(),
            SimConfig::over(Seconds::from_hours(12.0)),
        );
        assert_eq!(summary.runs.len(), 5);
        assert!(summary.harvested.min <= summary.harvested.mean);
        assert!(summary.harvested.mean <= summary.harvested.max);
        // Different seeds give different weather, hence different
        // harvests.
        assert!(summary.harvested.max > summary.harvested.min);
        // Every run's books balance.
        for run in &summary.runs {
            assert!(run.audit_residual < 1e-6);
        }
    }

    #[test]
    fn spread_reports_dispersion() {
        let s = Spread::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        // Known sample std-dev of this set ≈ 2.138.
        assert!((s.std_dev - 2.138).abs() < 0.01, "{}", s.std_dev);

        let odd = Spread::of(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median, 2.0);

        let single = Spread::of(&[7.5]);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.median, 7.5);
        assert_eq!(single.mean, 7.5);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn spread_rejects_empty() {
        Spread::of(&[]);
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        let seeds = [11u64, 22, 33, 44, 55, 66];
        let node = mseh_node::SensorNode::submilliwatt_class();
        let config = SimConfig::over(Seconds::from_hours(6.0));
        let seq = run_seed_ensemble_seq(
            &seeds,
            |_| solar_rig(),
            Environment::outdoor_temperate,
            |_| FixedDuty::new(DutyCycle::saturating(0.05)),
            &node,
            config,
        );
        for threads in [1, 2, 4] {
            let par = run_seed_ensemble_with_threads(
                threads,
                &seeds,
                |_| solar_rig(),
                Environment::outdoor_temperate,
                |_| FixedDuty::new(DutyCycle::saturating(0.05)),
                &node,
                config,
            );
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn instrumented_ensemble_is_deterministic_and_conserved() {
        let seeds = [7u64, 8, 9, 10];
        let node = mseh_node::SensorNode::submilliwatt_class();
        let config = SimConfig::over(Seconds::from_hours(6.0));
        let run = |threads| {
            run_seed_ensemble_instrumented(
                threads,
                &seeds,
                |_| solar_rig(),
                Environment::outdoor_temperate,
                |_| FixedDuty::new(DutyCycle::saturating(0.05)),
                &node,
                config,
            )
        };
        let seq = run(1);
        for threads in [2, 4] {
            let par = run(threads);
            assert_eq!(par, seq, "threads = {threads}");
        }

        // Instrumentation must not perturb the physics.
        let bare = run_seed_ensemble_with_threads(
            1,
            &seeds,
            |_| solar_rig(),
            Environment::outdoor_temperate,
            |_| FixedDuty::new(DutyCycle::saturating(0.05)),
            &node,
            config,
        );
        assert_eq!(seq.summary, bare);

        // Metrics agree with the summed run results.
        let harvested: f64 = seq.summary.runs.iter().map(|r| r.harvested.value()).sum();
        let metered = seq
            .metrics
            .counter("sim_harvested_joules_total", &[])
            .unwrap();
        assert!((metered - harvested).abs() <= 1e-9 * harvested.abs().max(1.0));
        let steps = seq.metrics.counter("sim_steps_total", &[]).unwrap();
        assert_eq!(steps, (seeds.len() * 360) as f64);

        // Every seed's books balance window by window.
        assert_eq!(seq.audits.len(), seeds.len());
        assert!(
            seq.worst_audit_relative() < 1e-6,
            "worst residual {:e}",
            seq.worst_audit_relative()
        );
        for audit in &seq.audits {
            assert_eq!(audit.windows, 36);
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn rejects_empty_seed_set() {
        run_seed_ensemble(
            &[],
            |_| solar_rig(),
            Environment::outdoor_temperate,
            |_| FixedDuty::new(DutyCycle::ZERO),
            &mseh_node::SensorNode::submilliwatt_class(),
            SimConfig::over(Seconds::from_hours(1.0)),
        );
    }
}
