//! The simulation runner: drives a [`Platform`] + node + policy against an
//! environment, recording time series and enforcing energy conservation.

use crate::cancel::{tripped, CancelToken};
use crate::metrics::MetricsRegistry;
use crate::observe::{SimEvent, SimObserver, StepEnergies};
use crate::platform::Platform;
use mseh_env::{EnvConditions, EnvSampler, Trace};
use mseh_node::{DutyCyclePolicy, SensorNode};
use mseh_units::{DutyCycle, Joules, Seconds, Volts};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Step width (quasi-static power-flow per step).
    pub dt: Seconds,
    /// Total simulated span.
    pub duration: Seconds,
    /// Simulation time at which the run begins (lets consecutive runs on
    /// the same platform continue through the environment's calendar
    /// instead of replaying day zero).
    pub start_at: Seconds,
    /// How often the node's policy re-decides its duty cycle.
    pub control_interval: Seconds,
    /// Whether to record full time series (store voltage, harvest, duty).
    pub record: bool,
}

impl SimConfig {
    /// One week at 60 s steps, 10-minute control windows, no recording.
    pub fn week() -> Self {
        Self::over(Seconds::from_days(7.0))
    }

    /// One day at 60 s steps with recording on.
    pub fn day_recorded() -> Self {
        Self {
            record: true,
            ..Self::over(Seconds::from_days(1.0))
        }
    }

    /// Custom span at 60 s steps, starting at simulation time zero.
    pub fn over(duration: Seconds) -> Self {
        Self {
            dt: Seconds::new(60.0),
            duration,
            start_at: Seconds::ZERO,
            control_interval: Seconds::from_minutes(10.0),
            record: false,
        }
    }

    /// Shifts the run's start time (continuing a platform through the
    /// environment's calendar across multiple runs).
    pub fn starting_at(mut self, start: Seconds) -> Self {
        self.start_at = start;
        self
    }
}

/// Recorded time series from a run (present when
/// [`SimConfig::record`] is set).
#[derive(Debug, Clone, PartialEq)]
pub struct SimTraces {
    /// Store terminal voltage over time.
    pub store_voltage: Trace,
    /// Harvested bus power over time (per-step average).
    pub harvest_power: Trace,
    /// Duty cycle chosen by the policy over time.
    pub duty: Trace,
}

/// Aggregate results of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total simulated time.
    pub duration: Seconds,
    /// Fraction of load energy actually served.
    pub uptime: f64,
    /// Data samples produced (scaled by served fraction per step).
    pub samples: f64,
    /// Total bus energy harvested.
    pub harvested: Joules,
    /// Total energy delivered to the load.
    pub delivered: Joules,
    /// Total unserved load energy.
    pub shortfall: Joules,
    /// Total output-stage conversion loss while serving the load.
    pub converter_losses: Joules,
    /// Number of steps with any shortfall.
    pub brownout_steps: u64,
    /// Longest run of consecutive brown-out steps.
    pub longest_outage_steps: u64,
    /// Minimum store voltage seen.
    pub min_store_voltage: Volts,
    /// Residual of the bus-level conservation audit, as a fraction of
    /// total throughput (should be ≈0; asserted below 1e-6 in debug).
    pub audit_residual: f64,
    /// Recorded traces, when enabled.
    pub traces: Option<SimTraces>,
}

impl SimResult {
    /// Whether the run had zero unserved load.
    pub fn zero_downtime(&self) -> bool {
        self.brownout_steps == 0
    }
}

/// Runs `platform` + `node` + `policy` against `env` under `config`.
///
/// Each step: (control window edge) the policy reads the platform's
/// energy status and picks a duty cycle → the node's average power at
/// that duty becomes the load → the platform moves power.
///
/// # Energy conservation
///
/// The runner audits the bus identity
/// `harvested + discharged = charged + spilled + served demand`
/// accumulated over the whole run, and the storage identity
/// `charged − discharged − losses = Δstored`. The combined residual is
/// returned in [`SimResult::audit_residual`] and asserted small when
/// debug assertions are on.
///
/// # Examples
///
/// ```
/// use mseh_sim::{run_simulation, SimConfig};
/// use mseh_core::{PowerUnit, StoreRole, PortRequirement};
/// use mseh_power::DcDcConverter;
/// use mseh_storage::Supercap;
/// use mseh_node::{SensorNode, FixedDuty};
/// use mseh_env::Environment;
/// use mseh_units::{DutyCycle, Seconds, Volts};
///
/// let mut cap = Supercap::edlc_22f();
/// cap.set_voltage(Volts::new(2.5));
/// let mut unit = PowerUnit::builder("quick")
///     .store_port(
///         PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
///         Some(Box::new(cap)), StoreRole::PrimaryBuffer, true)
///     .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
///     .build();
/// let result = run_simulation(
///     &mut unit,
///     &Environment::indoor_office(1),
///     &SensorNode::submilliwatt_class(),
///     &mut FixedDuty::new(DutyCycle::saturating(0.05)),
///     SimConfig::over(Seconds::from_hours(2.0)),
/// );
/// assert!(result.uptime > 0.9);
/// ```
pub fn run_simulation(
    platform: &mut dyn Platform,
    env: &dyn EnvSampler,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    config: SimConfig,
) -> SimResult {
    run_simulation_observed(platform, env, node, policy, config, &mut [])
}

/// Copies a platform's operating-point kernel-cache counters into
/// `metrics` as the `sim_kernel_cache_{hits,misses,invalidations}_total`
/// counters, plus the `sim_kernel_cache_hit_rate` gauge.
///
/// Cache counters are platform state, not run results — they are kept
/// out of [`SimResult`] (so cached and uncached runs of the same
/// scenario compare equal) and surfaced here instead: call this after a
/// run to fold the platform's counters into a registry snapshot.
pub fn publish_kernel_cache_stats(platform: &dyn Platform, metrics: &mut MetricsRegistry) {
    let stats = platform.kernel_cache_stats();
    metrics.counter_add("sim_kernel_cache_hits_total", &[], stats.hits as f64);
    metrics.counter_add("sim_kernel_cache_misses_total", &[], stats.misses as f64);
    metrics.counter_add(
        "sim_kernel_cache_invalidations_total",
        &[],
        stats.invalidations as f64,
    );
    metrics.gauge_set("sim_kernel_cache_hit_rate", &[], stats.hit_rate());
}

/// [`run_simulation`] with an attached set of [`SimObserver`]s.
///
/// Every observer receives the full [`SimEvent`] stream: run and
/// control-window boundaries, per-step `Harvest`/`ConversionLoss`,
/// `StoreCharge`/`StoreDischarge`/`Shortfall` when non-zero, a
/// `PolicyChange` whenever the duty choice moves between windows, and a
/// `FaultFire` when the platform's storage capacity drops (checked at
/// window granularity, so a mid-window failure is reported at the next
/// window edge or at run end).
///
/// Passing an empty slice is exactly [`run_simulation`]: the kernel
/// skips event construction entirely, so the bare hot loop pays one
/// branch per step.
pub fn run_simulation_observed(
    platform: &mut dyn Platform,
    env: &dyn EnvSampler,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    config: SimConfig,
    observers: &mut [&mut dyn SimObserver],
) -> SimResult {
    run_simulation_core(platform, env, node, policy, config, observers, None)
        .expect("a run without a cancel token cannot be cancelled")
}

/// [`run_simulation_observed`] with a cooperative [`CancelToken`].
///
/// The token is checked once per control window; a tripped token makes
/// the kernel stop before starting the next window and return `None`
/// (partial results are discarded, never returned torn). An
/// un-cancelled run returns exactly what [`run_simulation_observed`]
/// would — the checkpoint is a read-only branch, so results are
/// bit-identical.
pub fn run_simulation_cancellable(
    platform: &mut dyn Platform,
    env: &dyn EnvSampler,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    config: SimConfig,
    observers: &mut [&mut dyn SimObserver],
    cancel: &CancelToken,
) -> Option<SimResult> {
    run_simulation_core(platform, env, node, policy, config, observers, Some(cancel))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_simulation_core(
    platform: &mut dyn Platform,
    env: &dyn EnvSampler,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    config: SimConfig,
    observers: &mut [&mut dyn SimObserver],
    cancel: Option<&CancelToken>,
) -> Option<SimResult> {
    assert!(config.dt.value() > 0.0, "dt must be positive");
    assert!(
        config.duration >= config.dt,
        "duration must cover at least one step"
    );

    // Truncate to whole steps and close the horizon with an explicit
    // fractional step: rounding the count would simulate up to half a
    // step past (or short of) the requested span, and ceiling always
    // overshoots. The dust guard keeps exact multiples (e.g. one day of
    // 60 s steps) from growing a ~1e-13 s ghost step.
    let full_steps = (config.duration.value() / config.dt.value()).floor() as u64;
    let frac_dt = {
        let rem = config.duration.value() - full_steps as f64 * config.dt.value();
        (rem > config.dt.value() * 1e-9).then(|| Seconds::new(rem))
    };
    let steps = full_steps + u64::from(frac_dt.is_some());
    let control_every = (config.control_interval.value() / config.dt.value())
        .round()
        .max(1.0) as u64;

    let initial_stored = platform.total_stored_energy();
    let initial_losses = platform.storage_losses();

    fn emit(observers: &mut [&mut dyn SimObserver], event: SimEvent) {
        for obs in observers.iter_mut() {
            obs.on_event(&event);
        }
    }
    // When nobody is listening the hot loop must stay bare: events are
    // only constructed behind this flag.
    let observing = !observers.is_empty();
    let mut prev_duty: Option<DutyCycle> = None;
    let mut prev_capacity = platform.storage_capacity();
    let mut prev_faults = platform.fault_counts();
    let mut prev_failovers = policy.failover_count();

    // Polls the platform's fault counters (and capacity, as a fallback
    // signal for unscheduled degradation) and emits the FaultFire /
    // FaultClear events accrued since the previous poll. Count-based
    // reporting catches faults that fire *and* clear inside one control
    // window, which a capacity-drop check alone cannot see.
    fn poll_faults(
        observers: &mut [&mut dyn SimObserver],
        platform: &dyn Platform,
        t: Seconds,
        prev_capacity: &mut Joules,
        prev_faults: &mut (u64, u64),
    ) {
        let capacity = platform.storage_capacity();
        let (fires, clears) = platform.fault_counts();
        let lost = (*prev_capacity - capacity).max(Joules::ZERO);
        let restored = (capacity - *prev_capacity).max(Joules::ZERO);
        if fires > prev_faults.0 {
            // The capacity drop (if any) is attributed to the first new
            // firing; a same-window fire+clear nets to zero capacity
            // change and reports zero.
            for k in 0..fires - prev_faults.0 {
                for obs in observers.iter_mut() {
                    obs.on_event(&SimEvent::FaultFire {
                        time: t,
                        lost_capacity: if k == 0 { lost } else { Joules::ZERO },
                    });
                }
            }
        } else if capacity.value() < prev_capacity.value() {
            // No counter moved but capacity still fell: unscheduled
            // degradation (e.g. a bare FailingStorage), reported as
            // before.
            for obs in observers.iter_mut() {
                obs.on_event(&SimEvent::FaultFire {
                    time: t,
                    lost_capacity: lost,
                });
            }
        }
        if clears > prev_faults.1 {
            for k in 0..clears - prev_faults.1 {
                for obs in observers.iter_mut() {
                    obs.on_event(&SimEvent::FaultClear {
                        time: t,
                        restored_capacity: if k == 0 { restored } else { Joules::ZERO },
                    });
                }
            }
        }
        *prev_capacity = capacity;
        *prev_faults = (fires, clears);
    }
    if observing {
        emit(
            observers,
            SimEvent::RunStart {
                time: config.start_at,
            },
        );
    }

    let mut samples = 0.0;
    let mut harvested = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut shortfall = Joules::ZERO;
    let mut demanded = Joules::ZERO;
    let mut charged = Joules::ZERO;
    let mut discharged = Joules::ZERO;
    let mut spilled = Joules::ZERO;
    let mut overheads = Joules::ZERO;
    let mut converter_losses = Joules::ZERO;
    let mut brownout_steps = 0u64;
    let mut outage_run = 0u64;
    let mut longest_outage = 0u64;
    let mut min_v = Volts::new(f64::INFINITY);

    let mut traces = config.record.then(|| SimTraces {
        store_voltage: Trace::with_capacity("store_voltage_v", steps as usize),
        harvest_power: Trace::with_capacity("harvest_power_w", steps as usize),
        duty: Trace::with_capacity("duty_cycle", steps as usize),
    });

    // The loop advances one control window at a time: the policy's duty
    // choice — and everything derived purely from it (the node's average
    // load and per-step demand) — is loop-invariant inside a window, so
    // it is computed once on the window edge instead of every step.
    // Ambient conditions for the whole window are sampled in one
    // batched `conditions_into` call so samplers can amortize per-step
    // trig/noise setup.
    let time_at =
        |i: u64| -> Seconds { config.start_at + Seconds::new(i as f64 * config.dt.value()) };
    let window_cap = control_every.min(steps) as usize;
    let mut times: Vec<Seconds> = Vec::with_capacity(window_cap);
    let mut conditions: Vec<EnvConditions> = Vec::with_capacity(window_cap);
    // One compact record per step accumulates here for the whole window
    // and goes out in one `on_step_records` call per observer — a
    // single dynamic dispatch per window, from which each observer
    // derives exactly the per-step events of one-at-a-time emission.
    let mut step_records: Vec<StepEnergies> =
        Vec::with_capacity(if observing { window_cap } else { 0 });

    let mut window_start = 0u64;
    while window_start < steps {
        // Cancellation checkpoint: at most one control window of work
        // happens after the token trips, and a cancelled run never
        // returns a torn partial result.
        if tripped(cancel) {
            return None;
        }
        let window_end = (window_start + control_every).min(steps);
        let duty = policy.choose(node, &platform.energy_status().at(time_at(window_start)));
        let load = node.average_power(duty);
        let demand = node.step(duty, config.dt);
        let load_energy = load * config.dt;

        if observing {
            let t_win = time_at(window_start);
            emit(
                observers,
                SimEvent::WindowStart {
                    time: t_win,
                    duty,
                    load,
                    stored: platform.total_stored_energy(),
                    losses: platform.storage_losses(),
                },
            );
            if let Some(prev) = prev_duty {
                if prev != duty {
                    emit(
                        observers,
                        SimEvent::PolicyChange {
                            time: t_win,
                            from: prev,
                            to: duty,
                        },
                    );
                }
            }
            // Fault counters and capacity are polled at window
            // granularity so the hot loop stays untouched.
            poll_faults(
                observers,
                platform,
                t_win,
                &mut prev_capacity,
                &mut prev_faults,
            );
            let failovers = policy.failover_count();
            if failovers > prev_failovers {
                emit(observers, SimEvent::FailoverEngaged { time: t_win, duty });
                prev_failovers = failovers;
            }
        }
        prev_duty = Some(duty);

        times.clear();
        times.extend((window_start..window_end).map(time_at));
        env.conditions_into(&times, &mut conditions);

        for (j, &t) in times.iter().enumerate() {
            // The final step may be fractional (when the duration is not
            // an exact multiple of dt); everything per-step scales by
            // its actual width.
            let (step_dt, step_samples, step_load_energy) = match frac_dt {
                Some(frac) if window_start + j as u64 == full_steps => {
                    (frac, node.step(duty, frac).samples, load * frac)
                }
                _ => (config.dt, demand.samples, load_energy),
            };
            let report = platform.step(&conditions[j], step_dt, load);

            harvested += report.harvested;
            delivered += report.delivered;
            shortfall += report.shortfall;
            charged += report.charged;
            discharged += report.discharged;
            spilled += report.spilled;
            overheads += report.overhead;
            converter_losses += report.converter_loss;
            demanded += step_load_energy;

            if observing {
                step_records.push(StepEnergies {
                    time: t,
                    harvested: report.harvested,
                    converter_loss: report.converter_loss,
                    overhead: report.overhead,
                    charged: report.charged,
                    discharged: report.discharged,
                    shortfall: report.shortfall,
                });
            }

            let served_fraction = if report.shortfall.value() > 0.0 {
                let full = (report.delivered + report.shortfall).value();
                if full > 0.0 {
                    report.delivered.value() / full
                } else {
                    0.0
                }
            } else {
                1.0
            };
            samples += step_samples * served_fraction;

            if report.shortfall.value() > 1e-12 {
                brownout_steps += 1;
                outage_run += 1;
                longest_outage = longest_outage.max(outage_run);
            } else {
                outage_run = 0;
            }
            min_v = min_v.min(report.store_voltage);

            if let Some(tr) = traces.as_mut() {
                tr.store_voltage.push(t, report.store_voltage.value());
                tr.harvest_power
                    .push(t, (report.harvested / step_dt).value());
                tr.duty.push(t, duty.value());
            }
        }

        if observing {
            // Flush the window's buffered step records before closing
            // it, so every observer sees the step events ahead of the
            // WindowEnd edge, exactly as with per-event emission.
            for obs in observers.iter_mut() {
                obs.on_step_records(&step_records);
            }
            step_records.clear();
            let t_end = if window_end == steps {
                config.start_at + config.duration
            } else {
                time_at(window_end)
            };
            emit(
                observers,
                SimEvent::WindowEnd {
                    time: t_end,
                    stored: platform.total_stored_energy(),
                    losses: platform.storage_losses(),
                },
            );
        }
        window_start = window_end;
    }

    if observing {
        let t_end = config.start_at + config.duration;
        // Catch faults and failovers during the final window.
        poll_faults(
            observers,
            platform,
            t_end,
            &mut prev_capacity,
            &mut prev_faults,
        );
        if policy.failover_count() > prev_failovers {
            let duty = prev_duty.unwrap_or(DutyCycle::ZERO);
            emit(observers, SimEvent::FailoverEngaged { time: t_end, duty });
        }
        emit(observers, SimEvent::RunEnd { time: t_end });
    }

    // Audit. Bus: harvested + discharged − charged − spilled = served
    // demand (load input + overheads − unserved). We don't observe
    // unserved bus energy directly, but the storage identity closes the
    // loop: charged − discharged − storage losses = Δstored.
    let d_stored = platform.total_stored_energy() - initial_stored;
    let d_losses = platform.storage_losses() - initial_losses;
    let storage_residual = (charged - discharged - d_losses - d_stored).value();
    let throughput = (harvested + discharged + charged).value().max(1.0);
    let audit_residual = storage_residual.abs() / throughput;
    debug_assert!(
        audit_residual < 1e-6,
        "storage conservation violated: residual {storage_residual} J"
    );

    let uptime = if demanded.value() > 0.0 {
        1.0 - (shortfall.value() / demanded.value()).clamp(0.0, 1.0)
    } else {
        1.0
    };

    Some(SimResult {
        duration: config.duration,
        uptime,
        samples,
        harvested,
        delivered,
        shortfall,
        converter_losses,
        brownout_steps,
        longest_outage_steps: longest_outage,
        min_store_voltage: min_v,
        audit_residual,
        traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::{PortRequirement, PowerUnit, StoreRole};
    use mseh_env::Environment;
    use mseh_harvesters::PvModule;
    use mseh_node::FixedDuty;
    use mseh_power::{DcDcConverter, FractionalVoc, IdealDiode, InputChannel};
    use mseh_storage::Supercap;
    use mseh_units::DutyCycle;

    fn solar_unit() -> PowerUnit {
        let channel = InputChannel::new(
            Box::new(PvModule::outdoor_panel_half_watt()),
            Box::new(FractionalVoc::pv_standard()),
            Box::new(IdealDiode::nanopower()),
            Box::new(DcDcConverter::mppt_front_end_5v()),
        );
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(1.8));
        PowerUnit::builder("solar test")
            .harvester_port(
                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                Some(channel),
                true,
            )
            .store_port(
                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(cap)),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
            .build()
    }

    #[test]
    fn day_run_harvests_and_serves() {
        let mut unit = solar_unit();
        let env = Environment::outdoor_temperate(3);
        let node = SensorNode::submilliwatt_class();
        let mut policy = FixedDuty::new(DutyCycle::saturating(0.05));
        let result = run_simulation(
            &mut unit,
            &env,
            &node,
            &mut policy,
            SimConfig::over(Seconds::from_days(1.0)),
        );
        assert!(result.harvested.value() > 10.0, "{:?}", result.harvested);
        assert!(result.uptime > 0.9, "uptime {}", result.uptime);
        assert!(result.samples > 0.0);
        assert!(result.audit_residual < 1e-6);
    }

    #[test]
    fn recording_produces_traces() {
        let mut unit = solar_unit();
        let env = Environment::outdoor_temperate(3);
        let node = SensorNode::submilliwatt_class();
        let mut policy = FixedDuty::new(DutyCycle::saturating(0.05));
        let result = run_simulation(
            &mut unit,
            &env,
            &node,
            &mut policy,
            SimConfig::day_recorded(),
        );
        let traces = result.traces.expect("recording enabled");
        assert_eq!(traces.store_voltage.len(), 1440);
        assert_eq!(traces.harvest_power.len(), 1440);
        // Noon harvest exceeds midnight harvest.
        let noon = traces.harvest_power.sample(Seconds::from_hours(12.5));
        let night = traces.harvest_power.sample(Seconds::from_hours(1.0));
        assert!(noon > night, "noon {noon} vs night {night}");
    }

    #[test]
    fn over_demanding_load_causes_brownouts() {
        let mut unit = solar_unit();
        let env = Environment::indoor_office(3); // nearly no PV energy
        let node = SensorNode::milliwatt_class();
        let mut policy = FixedDuty::new(DutyCycle::ONE);
        let result = run_simulation(
            &mut unit,
            &env,
            &node,
            &mut policy,
            SimConfig::over(Seconds::from_days(1.0)),
        );
        assert!(result.brownout_steps > 0);
        assert!(!result.zero_downtime());
        assert!(result.uptime < 1.0);
        assert!(result.longest_outage_steps > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let env = Environment::outdoor_temperate(9);
        let node = SensorNode::submilliwatt_class();
        let run = || {
            let mut unit = solar_unit();
            let mut policy = FixedDuty::new(DutyCycle::saturating(0.1));
            run_simulation(
                &mut unit,
                &env,
                &node,
                &mut policy,
                SimConfig::over(Seconds::from_hours(6.0)),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.harvested, b.harvested);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.uptime, b.uptime);
    }

    #[test]
    fn fractional_final_step_closes_the_horizon() {
        // duration = 10.5 dt must simulate exactly 10.5 dt of load — 10
        // full steps plus one half step — not 11 dt (the old ceil) or a
        // rounded count.
        let dt = Seconds::new(60.0);
        let node = SensorNode::submilliwatt_class();
        let run = |duration: Seconds| {
            let mut cap = Supercap::edlc_22f();
            cap.set_voltage(Volts::new(2.5));
            let mut unit = PowerUnit::builder("frac horizon")
                .store_port(
                    PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                    Some(Box::new(cap)),
                    StoreRole::PrimaryBuffer,
                    true,
                )
                .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
                .build();
            let mut policy = FixedDuty::new(DutyCycle::ONE);
            run_simulation(
                &mut unit,
                &Environment::indoor_office(1),
                &node,
                &mut policy,
                SimConfig {
                    dt,
                    duration,
                    start_at: Seconds::ZERO,
                    control_interval: Seconds::from_minutes(10.0),
                    record: true,
                },
            )
        };

        let frac = run(Seconds::new(60.0 * 10.5));
        let whole = run(Seconds::new(60.0 * 10.0));
        assert_eq!(frac.uptime, 1.0, "store-fed load must be fully served");
        assert_eq!(whole.uptime, 1.0);

        // 10 full steps + 1 fractional step.
        let traces = frac.traces.expect("recording enabled");
        assert_eq!(traces.store_voltage.len(), 11);
        let last_t = traces.store_voltage.iter().last().unwrap().0;
        assert_eq!(last_t, Seconds::new(60.0 * 10.0));

        // Served energy scales with the true horizon: exactly 5% more
        // than the 10-step run, not 10% (which ceil would give).
        let ratio = frac.delivered.value() / whole.delivered.value();
        assert!((ratio - 1.05).abs() < 1e-9, "delivered ratio {ratio}");
        let sample_ratio = frac.samples / whole.samples;
        assert!(
            (sample_ratio - 1.05).abs() < 1e-9,
            "samples ratio {sample_ratio}"
        );

        // Exact multiples grow no ghost step.
        let exact = run(Seconds::from_days(1.0));
        assert_eq!(exact.traces.expect("recording").store_voltage.len(), 1440);
    }

    #[test]
    fn cancellable_run_matches_plain_run_and_honours_the_token() {
        let env = Environment::outdoor_temperate(5);
        let node = SensorNode::submilliwatt_class();
        let config = SimConfig::over(Seconds::from_hours(4.0));

        let mut unit = solar_unit();
        let mut policy = FixedDuty::new(DutyCycle::saturating(0.05));
        let plain = run_simulation(&mut unit, &env, &node, &mut policy, config);

        let mut unit = solar_unit();
        let mut policy = FixedDuty::new(DutyCycle::saturating(0.05));
        let token = CancelToken::new();
        let cancellable = run_simulation_cancellable(
            &mut unit,
            &env,
            &node,
            &mut policy,
            config,
            &mut [],
            &token,
        )
        .expect("token never tripped");
        assert_eq!(plain, cancellable);

        // A pre-tripped token stops the run before any window.
        let mut unit = solar_unit();
        let mut policy = FixedDuty::new(DutyCycle::saturating(0.05));
        token.cancel();
        assert!(run_simulation_cancellable(
            &mut unit,
            &env,
            &node,
            &mut policy,
            config,
            &mut [],
            &token,
        )
        .is_none());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn rejects_zero_dt() {
        let mut unit = solar_unit();
        let env = Environment::outdoor_temperate(1);
        let node = SensorNode::submilliwatt_class();
        let mut policy = FixedDuty::new(DutyCycle::ZERO);
        run_simulation(
            &mut unit,
            &env,
            &node,
            &mut policy,
            SimConfig {
                dt: Seconds::ZERO,
                duration: Seconds::new(10.0),
                start_at: Seconds::ZERO,
                control_interval: Seconds::new(1.0),
                record: false,
            },
        );
    }
}
