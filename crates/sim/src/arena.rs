//! Policy-evaluation arena: lockstep multi-policy tournaments over a
//! shared environment trace.
//!
//! The survey's future-work proposal is intelligence co-located with
//! the harvesting subsystem; choosing *which* intelligence means
//! evaluating N candidate policies over M seeded scenarios. Run
//! naively that is N×M full simulations — yet every one of those runs
//! re-samples the same seeded [`Environment`] and re-solves the same
//! harvest operating points, because harvest is independent of the
//! load the policy schedules. The arena amortizes that shared work:
//! per (scenario, seed) it samples the environment **once**, builds
//! the per-step harvest table **once** (the fleet engine's
//! [`build_harvest_table`] replay machinery), and steps all N policy
//! lanes in lockstep against it, with per-lane store state held
//! struct-of-arrays so the batched solve kernels
//! ([`mseh_storage::SupercapLanes`], [`mseh_storage::BatteryLanes`])
//! apply across policy lanes exactly as they do across fleet nodes.
//!
//! # Bit-identity
//!
//! Under the default per-step cadence every lane's trajectory is
//! bit-identical to an independent [`run_simulation`] of that policy
//! against the same scenario — same iterate sequence, full-summary
//! equality — because the lane arithmetic is the fleet engine's, which
//! carries that contract already. Seeds fan out across threads via the
//! sharded [`par_map_with`] merge and fold in seed order, so results
//! are bit-identical at any thread count. Rankings therefore reflect
//! policy behaviour alone, never scheduling.
//!
//! # Examples
//!
//! ```
//! use mseh_sim::{run_arena, ArenaConfig, ArenaSpec, Contender, DenseClass, DenseStore};
//! use mseh_env::Environment;
//! use mseh_node::{FixedDuty, SensorNode, VoltageThreshold};
//! use mseh_power::{DcDcConverter, FractionalVoc, IdealDiode, InputChannel};
//! use mseh_harvesters::PvModule;
//! use mseh_storage::Supercap;
//! use mseh_units::{DutyCycle, Seconds};
//!
//! let spec = ArenaSpec::dense(
//!     "pv shoot-out",
//!     SensorNode::submilliwatt_class(),
//!     DenseClass::new(
//!         || InputChannel::new(
//!             Box::new(PvModule::outdoor_panel_half_watt()),
//!             Box::new(FractionalVoc::pv_standard()),
//!             Box::new(IdealDiode::nanopower()),
//!             Box::new(DcDcConverter::mppt_front_end_5v()),
//!         ),
//!         DcDcConverter::buck_boost_3v3(),
//!         DenseStore::Supercap(Supercap::edlc_22f()),
//!     ),
//!     |seed| Environment::outdoor_temperate(seed),
//! )
//! .with_contender(Contender::new("fixed-5%", |_| {
//!     Box::new(FixedDuty::new(DutyCycle::saturating(0.05)))
//! }))
//! .with_contender(Contender::new("ladder", |_| {
//!     Box::new(VoltageThreshold::supercap_ladder())
//! }))
//! .with_seeds(&[1, 2]);
//! let out = run_arena(&spec, ArenaConfig::over(Seconds::from_hours(2.0)));
//! assert_eq!(out.summary.standings.len(), 2);
//! assert_eq!(out.summary.standings[0].rank, 1);
//! ```

use crate::cancel::tripped;
use crate::fleet::dense_lanes::{run_battery_lanes, run_supercap_lanes, LanePopulation};
use crate::fleet::{
    build_harvest_table, percentile, simulate_node, simulate_node_dense, DenseClass,
    DenseSolveTier, DenseStore, EnvCadence, FleetControl, NodeOutcome, PlatformFactory,
    PolicyFactory, StepPlan, UptimePercentiles,
};
use crate::parallel::{par_map_with, thread_count};
use crate::platform::Platform;
#[cfg(doc)]
use crate::runner::run_simulation;
use crate::runner::{SimConfig, SimResult};
use mseh_env::{EnvConditions, EnvSampler, Environment, JitterFactors};
use mseh_harvesters::CacheStats;
use mseh_node::{
    DayProfileForecast, DutyCyclePolicy, EnergyNeutral, FailoverPolicy, FixedDuty,
    ForecastDutySelect, HillClimbDuty, SensorNode, VoltageThreshold,
};
use mseh_power::HarvestStep;
use mseh_units::{DutyCycle, Joules, Seconds, Volts};

/// Builds the scenario environment from a seed.
pub type EnvFactory = dyn Fn(u64) -> Environment + Send + Sync;

/// One policy entered in the tournament: a display name plus a factory
/// that builds a fresh policy instance per (scenario, seed). The
/// factory receives the scenario seed, so stochastic policies (e.g.
/// [`HillClimbDuty`]) derive their randomness deterministically per
/// seed — the bit-identity contract's requirement.
pub struct Contender {
    name: String,
    policy: Box<PolicyFactory>,
}

impl Contender {
    /// Declares a contender.
    pub fn new(
        name: &str,
        policy: impl Fn(u64) -> Box<dyn DutyCyclePolicy> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            policy: Box::new(policy),
        }
    }

    /// The contender's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the policy instance this contender enters for a scenario
    /// seed — what each arena lane runs, exposed so harnesses can
    /// reproduce a lane with an independent [`run_simulation`].
    pub fn build(&self, seed: u64) -> Box<dyn DutyCyclePolicy> {
        (self.policy)(seed)
    }
}

impl core::fmt::Debug for Contender {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Contender")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// The hardware every policy lane runs on.
enum ArenaPlatform {
    /// Arbitrary platforms behind dynamic dispatch, rebuilt per
    /// (scenario seed, lane) by the factory — the reference path,
    /// bit-identical to standalone runs by construction.
    Boxed(Box<PlatformFactory>),
    /// The monomorphized single-channel/single-store shape: lanes
    /// share one harvest table and step on the batched
    /// struct-of-arrays kernels.
    Dense(Box<DenseClass>),
}

/// The tournament definition: one scenario (node, platform shape, and
/// seeded environment family), N contender policies, and K seeds.
/// Every (contender, seed) pair becomes one policy lane.
pub struct ArenaSpec {
    name: String,
    node: SensorNode,
    platform: ArenaPlatform,
    env: Box<EnvFactory>,
    contenders: Vec<Contender>,
    seeds: Vec<u64>,
}

impl ArenaSpec {
    /// A scenario on boxed platforms: `platform` builds each lane's
    /// unit from the scenario seed (every lane of a seed gets an
    /// identically-built platform — heterogeneity belongs to the
    /// policies under test, not the hardware).
    pub fn boxed(
        name: &str,
        node: SensorNode,
        platform: impl Fn(u64) -> Box<dyn Platform> + Send + Sync + 'static,
        env: impl Fn(u64) -> Environment + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            node,
            platform: ArenaPlatform::Boxed(Box::new(platform)),
            env: Box::new(env),
            contenders: Vec::new(),
            seeds: vec![0],
        }
    }

    /// A scenario on the dense single-channel/single-store shape:
    /// lanes replay one shared harvest table and step batched. The
    /// declaration is trusted exactly as [`crate::DenseGroup`]'s is.
    pub fn dense(
        name: &str,
        node: SensorNode,
        class: DenseClass,
        env: impl Fn(u64) -> Environment + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            node,
            platform: ArenaPlatform::Dense(Box::new(class)),
            env: Box::new(env),
            contenders: Vec::new(),
            seeds: vec![0],
        }
    }

    /// Enters one contender.
    pub fn with_contender(mut self, contender: Contender) -> Self {
        self.contenders.push(contender);
        self
    }

    /// Enters a batch of contenders (e.g. [`default_contenders`]).
    pub fn with_contenders(mut self, contenders: impl IntoIterator<Item = Contender>) -> Self {
        self.contenders.extend(contenders);
        self
    }

    /// Sets the scenario seeds (default: the single seed `0`). Each
    /// seed samples its own environment trace; rankings aggregate
    /// across all of them.
    pub fn with_seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entered contenders, in declaration order.
    pub fn contenders(&self) -> &[Contender] {
        &self.contenders
    }

    /// The scenario seeds.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Total policy lanes: contenders × seeds.
    pub fn lanes(&self) -> u64 {
        self.contenders.len() as u64 * self.seeds.len() as u64
    }
}

impl core::fmt::Debug for ArenaSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArenaSpec")
            .field("name", &self.name)
            .field("contenders", &self.contenders.len())
            .field("seeds", &self.seeds)
            .finish_non_exhaustive()
    }
}

/// Configuration of one arena run.
#[derive(Debug, Clone, Copy)]
pub struct ArenaConfig {
    /// Per-lane stepping parameters. `record` is ignored: lanes never
    /// keep per-step traces.
    pub sim: SimConfig,
    /// Worker threads fanning out over seeds (`0` = [`thread_count`]).
    /// Results are bit-identical at any value.
    pub threads: usize,
    /// How often lanes re-sample scenario conditions. The default
    /// [`EnvCadence::PerStep`] is bit-identical to standalone
    /// [`run_simulation`] runs; [`EnvCadence::PerWindow`] is the
    /// fleet-scale semantic (dense scenarios then require a replayable
    /// channel, as dense fleet groups do).
    pub cadence: EnvCadence,
    /// Solve tier for dense scenarios (default
    /// [`DenseSolveTier::Batched`], bit-identical to
    /// [`DenseSolveTier::Scalar`]).
    pub dense_tier: DenseSolveTier,
    /// Also return a full [`SimResult`] per lane, in seed-major lane
    /// order (`seed_index × contenders + contender_index`).
    pub keep_lane_results: bool,
}

impl ArenaConfig {
    /// Arena defaults over `duration`: 60 s steps, 10-minute control
    /// windows, per-step cadence (standalone-run bit-identity), auto
    /// threads, batched dense tier.
    pub fn over(duration: Seconds) -> Self {
        Self {
            sim: SimConfig::over(duration),
            threads: 0,
            cadence: EnvCadence::PerStep,
            dense_tier: DenseSolveTier::Batched,
            keep_lane_results: false,
        }
    }

    /// Sets an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Switches to per-window condition sampling (the fleet-scale
    /// semantic; no longer bit-identical to standalone runs).
    pub fn windowed_env(mut self) -> Self {
        self.cadence = EnvCadence::PerWindow;
        self
    }

    /// Sets the dense-lane solve tier.
    pub fn with_dense_tier(mut self, tier: DenseSolveTier) -> Self {
        self.dense_tier = tier;
        self
    }

    /// Keeps a full per-lane [`SimResult`] vector on the result.
    pub fn keep_lane_results(mut self) -> Self {
        self.keep_lane_results = true;
        self
    }
}

/// One contender's aggregate line in the final ranking, folded across
/// all scenario seeds in seed order (bit-identical at any thread
/// count).
#[derive(Debug, Clone, PartialEq)]
pub struct ContenderStanding {
    /// The contender's display name.
    pub name: String,
    /// 1-based rank after sorting (1 = winner).
    pub rank: usize,
    /// Energy-weighted served fraction across all seeds:
    /// `1 − shortfall / demanded`.
    pub served_fraction: f64,
    /// Distribution of the contender's per-seed uptimes.
    pub uptime: UptimePercentiles,
    /// Total bus energy harvested across seeds.
    pub harvested: Joules,
    /// Total energy delivered to the load.
    pub delivered: Joules,
    /// Total unserved load energy.
    pub shortfall: Joules,
    /// Total load energy demanded.
    pub demanded: Joules,
    /// Total output-stage conversion loss.
    pub converter_losses: Joules,
    /// Energy stranded by active faults at run end, summed over seeds.
    pub stranded_energy: Joules,
    /// Total application samples delivered (shortfall-weighted).
    pub samples: f64,
    /// Steps with any shortfall, summed over seeds.
    pub brownout_steps: u64,
    /// Longest consecutive-shortfall run in any seed.
    pub longest_outage_steps: u64,
    /// Minimum store voltage seen in any seed.
    pub min_store_voltage: Volts,
    /// Seeds this contender finished with zero brown-out steps
    /// (energy-neutral under the survey's operating criterion).
    pub energy_neutral_seeds: u64,
    /// Failover-mode entries counted by the policy (non-zero only for
    /// [`FailoverPolicy`]-wrapped contenders).
    pub failovers: u64,
    /// Worst single-lane conservation residual for this contender.
    pub worst_audit: f64,
}

/// Aggregate results of an arena run. All totals fold per-lane results
/// in (seed, contender) order, so they are bit-identical at any thread
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaSummary {
    /// Contenders entered.
    pub contenders: u64,
    /// Scenario seeds evaluated.
    pub seeds: u64,
    /// Policy lanes simulated (`contenders × seeds`).
    pub lanes: u64,
    /// Steps each lane took (including the fractional closer, if any).
    pub steps_per_lane: u64,
    /// Simulated span per lane.
    pub duration: Seconds,
    /// Contender lines ranked best first (rank 1 at index 0): by
    /// served fraction, then mean uptime, then samples delivered, then
    /// name.
    pub standings: Vec<ContenderStanding>,
    /// Kernel-cache counters summed across lanes plus the per-seed
    /// shared-table drivers (dense scenarios).
    pub kernel_cache: CacheStats,
    /// Worst interpolation-table voltage deviation recorded by any
    /// lane (`0` unless [`DenseSolveTier::Interpolated`] is active).
    pub interp_max_deviation: f64,
    /// Arena-aggregated conservation residual: |Σ signed per-lane
    /// residuals| over total storage throughput (≈0; < 1e-6 asserted
    /// in debug builds).
    pub audit_relative: f64,
}

/// Everything an arena run returns.
#[derive(Debug, Clone, PartialEq)]
pub struct ArenaResult {
    /// Rankings and aggregates over all lanes.
    pub summary: ArenaSummary,
    /// Per-lane results when [`ArenaConfig::keep_lane_results`] is
    /// set, in seed-major lane order.
    pub lane_results: Option<Vec<SimResult>>,
}

/// The stock tournament roster: the survey's incumbent fixed ladders
/// and reactive controllers plus the adaptive extensions — forecast
/// budgeting and selection over a learned diurnal profile, seeded
/// hill-climbing duty search, and a failover-wrapped incumbent.
pub fn default_contenders() -> Vec<Contender> {
    vec![
        Contender::new("fixed-2%", |_| {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.02)))
        }),
        Contender::new("fixed-10%", |_| {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.10)))
        }),
        Contender::new("fixed-50%", |_| {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.50)))
        }),
        Contender::new("voltage-ladder", |_| {
            Box::new(VoltageThreshold::supercap_ladder())
        }),
        Contender::new("energy-neutral", |_| Box::new(EnergyNeutral::new())),
        Contender::new("failover(energy-neutral)", |_| {
            Box::new(FailoverPolicy::new(Box::new(EnergyNeutral::new())))
        }),
        Contender::new("forecast-budget-12h", |_| {
            Box::new(DayProfileForecast::new(Seconds::from_hours(12.0)))
        }),
        Contender::new("forecast-select-12h", |_| {
            Box::new(ForecastDutySelect::new(Seconds::from_hours(12.0)))
        }),
        Contender::new("hill-climb", |seed| Box::new(HillClimbDuty::new(seed))),
    ]
}

/// One finished policy lane: the node-level outcome plus the policy's
/// own failover count read back after the run.
struct LaneOutcome {
    outcome: NodeOutcome,
    failovers: u64,
}

/// One seed row's worth of lanes, plus the shared-table driver's cache
/// counters (dense scenarios; zero for boxed).
struct RowOutcome {
    lanes: Vec<LaneOutcome>,
    driver_cache: CacheStats,
}

/// Runs the tournament described by `spec` under `config`.
///
/// # Panics
///
/// Panics on an empty roster or seed list, a non-positive `dt`, or a
/// duration shorter than one step. Long-running embeddings that must
/// survive a malformed spec (the `mseh serve` daemon) use
/// [`run_arena_controlled`], which reports those as `Err` instead.
pub fn run_arena(spec: &ArenaSpec, config: ArenaConfig) -> ArenaResult {
    match run_arena_controlled(spec, config, FleetControl::default()) {
        Ok(Some(result)) => result,
        Ok(None) => unreachable!("no cancel token was installed"),
        Err(message) => panic!("{message}"),
    }
}

/// [`run_arena`] as a daemon-facing entry point: spec/config validation
/// errors come back as `Err` instead of panicking, and a
/// [`FleetControl`] supplies optional cooperative cancellation
/// (`Ok(None)` when the token trips — partial results are discarded,
/// never returned torn) and progress reporting (counts are lanes). An
/// un-cancelled run returns exactly [`run_arena`]'s result, bit for
/// bit.
pub fn run_arena_controlled(
    spec: &ArenaSpec,
    config: ArenaConfig,
    control: FleetControl<'_>,
) -> Result<Option<ArenaResult>, String> {
    let cancel = control.cancel;
    let n = spec.contenders.len();
    if n == 0 {
        return Err("arena needs at least one contender".into());
    }
    if spec.seeds.is_empty() {
        return Err("arena needs at least one seed".into());
    }
    let sim = config.sim;
    if !(sim.dt.value().is_finite() && sim.dt.value() > 0.0) {
        return Err(format!("dt must be positive and finite, got {}", sim.dt));
    }
    if !sim.duration.value().is_finite() || sim.duration < sim.dt {
        return Err(format!(
            "duration must cover at least one step and be finite, got {} at dt {}",
            sim.duration, sim.dt
        ));
    }
    if !(sim.control_interval.value().is_finite() && sim.control_interval.value() > 0.0) {
        return Err(format!(
            "control interval must be positive and finite, got {}",
            sim.control_interval
        ));
    }
    if let DenseSolveTier::Interpolated { samples } = config.dense_tier {
        if samples < 2 {
            return Err(format!(
                "interpolation tier needs at least 2 knots, got {samples}"
            ));
        }
    }

    let plan = StepPlan::from_sim(sim, config.cadence, None);
    let times = plan.table_times();
    let lanes_total = spec.lanes();
    let threads = if config.threads == 0 {
        thread_count()
    } else {
        config.threads
    };

    // One shard per scenario seed: the row samples its environment
    // trace once, builds the shared harvest table once (dense), and
    // steps all N policy lanes against it. Rows fold back in seed
    // order, so thread count never touches a bit.
    let done_lanes = std::sync::atomic::AtomicU64::new(0);
    let seed_indices: Vec<usize> = (0..spec.seeds.len()).collect();
    let run_row = |&si: &usize| -> RowOutcome {
        let seed = spec.seeds[si];
        let mut row = RowOutcome {
            lanes: Vec::with_capacity(n),
            driver_cache: CacheStats::default(),
        };
        if tripped(cancel) {
            return row;
        }
        let env = (spec.env)(seed);
        let mut rows: Vec<EnvConditions> = Vec::new();
        env.conditions_into(&times, &mut rows);
        let mut policies: Vec<Box<dyn DutyCyclePolicy>> =
            spec.contenders.iter().map(|c| (c.policy)(seed)).collect();

        match &spec.platform {
            ArenaPlatform::Dense(class) => {
                // The shared work: one channel drives the full step
                // sequence; every lane replays the table.
                let mut channel = (class.channel)();
                let mut table: Vec<HarvestStep> = Vec::new();
                if build_harvest_table(
                    &mut channel,
                    &rows,
                    &JitterFactors::IDENTITY,
                    false,
                    &plan,
                    cancel,
                    &mut table,
                )
                .is_none()
                {
                    return row;
                }
                row.driver_cache = channel.kernel_cache_stats();
                if config.dense_tier == DenseSolveTier::Scalar {
                    // Reference tier: per-lane scalar store calls
                    // against the shared table.
                    for policy in policies.iter_mut() {
                        let cache = CacheStats {
                            hits: plan.steps,
                            ..CacheStats::default()
                        };
                        let outcome = match &class.store {
                            DenseStore::Supercap(s) => simulate_node_dense(
                                s,
                                &class.output,
                                class.supervisor_overhead,
                                class.monitoring,
                                &spec.node,
                                policy.as_mut(),
                                &table,
                                &plan,
                                cache,
                                cancel,
                            ),
                            DenseStore::Battery(b) => simulate_node_dense(
                                b,
                                &class.output,
                                class.supervisor_overhead,
                                class.monitoring,
                                &spec.node,
                                policy.as_mut(),
                                &table,
                                &plan,
                                cache,
                                cancel,
                            ),
                        };
                        match outcome {
                            Some(o) => row.lanes.push(LaneOutcome {
                                outcome: o,
                                failovers: 0,
                            }),
                            None => return row,
                        }
                    }
                } else {
                    // Batched tier: all policy lanes step as one
                    // struct-of-arrays population.
                    let mut out: Vec<NodeOutcome> = Vec::with_capacity(n);
                    let mut pop = LanePopulation {
                        node: &spec.node,
                        output: &class.output,
                        supervisor_overhead: class.supervisor_overhead,
                        monitoring: class.monitoring,
                        policies: &mut policies,
                    };
                    let ok = match &class.store {
                        DenseStore::Supercap(template) => run_supercap_lanes(
                            &mut pop,
                            template,
                            config.dense_tier,
                            &table,
                            &plan,
                            cancel,
                            &mut out,
                        ),
                        DenseStore::Battery(template) => {
                            run_battery_lanes(&mut pop, template, &table, &plan, cancel, &mut out)
                        }
                    };
                    if !ok {
                        return row;
                    }
                    row.lanes.extend(out.into_iter().map(|o| LaneOutcome {
                        outcome: o,
                        failovers: 0,
                    }));
                }
            }
            ArenaPlatform::Boxed(factory) => {
                for policy in policies.iter_mut() {
                    let mut platform = factory(seed);
                    match simulate_node(
                        platform.as_mut(),
                        &spec.node,
                        policy.as_mut(),
                        &rows,
                        &JitterFactors::IDENTITY,
                        false,
                        &plan,
                        cancel,
                    ) {
                        Some(o) => row.lanes.push(LaneOutcome {
                            outcome: o,
                            failovers: 0,
                        }),
                        None => return row,
                    }
                }
            }
        }

        // Read failover counts back from the policies themselves.
        for (lane, policy) in row.lanes.iter_mut().zip(policies.iter()) {
            lane.failovers = policy.failover_count();
        }

        if let Some(report) = control.progress {
            let done =
                n as u64 + done_lanes.fetch_add(n as u64, std::sync::atomic::Ordering::Relaxed);
            report(done, lanes_total);
        }
        row
    };

    let rows_out = par_map_with(threads.max(1), &seed_indices, run_row);

    // A tripped token may have left rows short; partial results are
    // discarded wholesale rather than folded torn.
    let completed: u64 = rows_out.iter().map(|r| r.lanes.len() as u64).sum();
    if tripped(cancel) || completed != lanes_total {
        return Ok(None);
    }

    // Per-contender fold across seeds, in seed order.
    struct Agg {
        harvested: Joules,
        delivered: Joules,
        shortfall: Joules,
        demanded: Joules,
        converter_losses: Joules,
        stranded: Joules,
        samples: f64,
        brownout_steps: u64,
        longest_outage: u64,
        min_v: Volts,
        neutral_seeds: u64,
        failovers: u64,
        worst_audit: f64,
        uptimes: Vec<f64>,
    }
    let mut aggs: Vec<Agg> = (0..n)
        .map(|_| Agg {
            harvested: Joules::ZERO,
            delivered: Joules::ZERO,
            shortfall: Joules::ZERO,
            demanded: Joules::ZERO,
            converter_losses: Joules::ZERO,
            stranded: Joules::ZERO,
            samples: 0.0,
            brownout_steps: 0,
            longest_outage: 0,
            min_v: Volts::new(f64::INFINITY),
            neutral_seeds: 0,
            failovers: 0,
            worst_audit: 0.0,
            uptimes: Vec::with_capacity(spec.seeds.len()),
        })
        .collect();

    let mut residual_signed = 0.0;
    let mut throughput = 0.0;
    let mut cache = CacheStats::default();
    let mut interp_max_deviation = 0.0f64;
    let mut lane_results = config
        .keep_lane_results
        .then(|| Vec::with_capacity(lanes_total as usize));

    for row in &rows_out {
        for (ci, lane) in row.lanes.iter().enumerate() {
            let o = &lane.outcome;
            let a = &mut aggs[ci];
            a.harvested += o.harvested;
            a.delivered += o.delivered;
            a.shortfall += o.shortfall;
            a.demanded += o.demanded;
            a.converter_losses += o.converter_losses;
            a.stranded += o.stranded;
            a.samples += o.samples;
            a.brownout_steps += o.brownout_steps;
            a.longest_outage = a.longest_outage.max(o.longest_outage_steps);
            a.min_v = a.min_v.min(o.min_store_voltage);
            a.neutral_seeds += u64::from(o.brownout_steps == 0);
            a.failovers += lane.failovers;
            a.worst_audit = a.worst_audit.max(o.audit_residual);
            a.uptimes.push(o.uptime);

            residual_signed += o.residual_signed;
            throughput += o.throughput;
            interp_max_deviation = interp_max_deviation.max(o.interp_deviation);
            cache.hits += o.cache.hits;
            cache.misses += o.cache.misses;
            cache.invalidations += o.cache.invalidations;
            if let Some(results) = lane_results.as_mut() {
                results.push(o.to_sim_result(plan.duration));
            }
        }
        cache.hits += row.driver_cache.hits;
        cache.misses += row.driver_cache.misses;
        cache.invalidations += row.driver_cache.invalidations;
    }

    let mut standings: Vec<ContenderStanding> = aggs
        .into_iter()
        .zip(&spec.contenders)
        .map(|(a, c)| {
            let mut sorted = a.uptimes.clone();
            sorted.sort_by(f64::total_cmp);
            let mean = a.uptimes.iter().sum::<f64>() / a.uptimes.len() as f64;
            let uptime = UptimePercentiles {
                min: sorted[0],
                p05: percentile(&sorted, 0.05),
                p25: percentile(&sorted, 0.25),
                p50: percentile(&sorted, 0.50),
                p75: percentile(&sorted, 0.75),
                p95: percentile(&sorted, 0.95),
                max: sorted[sorted.len() - 1],
                mean,
            };
            let served_fraction = if a.demanded.value() > 0.0 {
                1.0 - (a.shortfall.value() / a.demanded.value()).clamp(0.0, 1.0)
            } else {
                1.0
            };
            ContenderStanding {
                name: c.name.clone(),
                rank: 0,
                served_fraction,
                uptime,
                harvested: a.harvested,
                delivered: a.delivered,
                shortfall: a.shortfall,
                demanded: a.demanded,
                converter_losses: a.converter_losses,
                stranded_energy: a.stranded,
                samples: a.samples,
                brownout_steps: a.brownout_steps,
                longest_outage_steps: a.longest_outage,
                min_store_voltage: a.min_v,
                energy_neutral_seeds: a.neutral_seeds,
                failovers: a.failovers,
                worst_audit: a.worst_audit,
            }
        })
        .collect();

    // Rank: served fraction, then mean uptime, then samples delivered,
    // then name — all total orders, so the ranking is deterministic.
    standings.sort_by(|a, b| {
        b.served_fraction
            .total_cmp(&a.served_fraction)
            .then(b.uptime.mean.total_cmp(&a.uptime.mean))
            .then(b.samples.total_cmp(&a.samples))
            .then(a.name.cmp(&b.name))
    });
    for (i, s) in standings.iter_mut().enumerate() {
        s.rank = i + 1;
    }

    let audit_relative = residual_signed.abs() / throughput.max(1.0);
    debug_assert!(
        audit_relative < 1e-6,
        "arena-aggregated conservation residual {residual_signed} J"
    );

    Ok(Some(ArenaResult {
        summary: ArenaSummary {
            contenders: n as u64,
            seeds: spec.seeds.len() as u64,
            lanes: lanes_total,
            steps_per_lane: plan.steps,
            duration: plan.duration,
            standings,
            kernel_cache: cache,
            interp_max_deviation,
            audit_relative,
        },
        lane_results,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cancel::CancelToken;
    use crate::runner::run_simulation;
    use mseh_core::{
        IntelligenceLocation, InterfaceKind, PortRequirement, PowerUnit, StoreRole, Supervisor,
    };
    use mseh_harvesters::PvModule;
    use mseh_node::MonitoringLevel;
    use mseh_power::{DcDcConverter, FractionalVoc, IdealDiode, InputChannel};
    use mseh_storage::Supercap;
    use mseh_units::Volts;

    fn solar_channel() -> InputChannel {
        InputChannel::new(
            Box::new(PvModule::outdoor_panel_half_watt()),
            Box::new(FractionalVoc::pv_standard()),
            Box::new(IdealDiode::nanopower()),
            Box::new(DcDcConverter::mppt_front_end_5v()),
        )
    }

    fn solar_cap() -> Supercap {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(1.8));
        cap
    }

    fn full_supervisor() -> Supervisor {
        Supervisor {
            location: IntelligenceLocation::PowerUnit,
            monitoring: MonitoringLevel::Full,
            interface: InterfaceKind::Digital { two_way: false },
            overhead: mseh_units::Watts::ZERO,
        }
    }

    fn solar_unit() -> PowerUnit {
        PowerUnit::builder("arena node")
            .harvester_port(
                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                Some(solar_channel()),
                true,
            )
            .store_port(
                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(solar_cap())),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
            .supervisor(full_supervisor())
            .build()
    }

    /// The dense declaration of exactly the hardware in [`solar_unit`].
    fn solar_class() -> DenseClass {
        DenseClass::new(
            solar_channel,
            DcDcConverter::buck_boost_3v3(),
            DenseStore::Supercap(solar_cap()),
        )
        .with_monitoring(MonitoringLevel::Full)
    }

    fn mixed_roster() -> Vec<Contender> {
        vec![
            Contender::new("fixed-2%", |_| {
                Box::new(FixedDuty::new(DutyCycle::saturating(0.02)))
            }),
            Contender::new("fixed-20%", |_| {
                Box::new(FixedDuty::new(DutyCycle::saturating(0.20)))
            }),
            Contender::new("ladder", |_| Box::new(VoltageThreshold::supercap_ladder())),
            Contender::new("energy-neutral", |_| Box::new(EnergyNeutral::new())),
            Contender::new("hill-climb", |seed| Box::new(HillClimbDuty::new(seed))),
        ]
    }

    fn boxed_spec() -> ArenaSpec {
        ArenaSpec::boxed(
            "boxed",
            SensorNode::submilliwatt_class(),
            |_| Box::new(solar_unit()),
            Environment::outdoor_temperate,
        )
        .with_contenders(mixed_roster())
        .with_seeds(&[11, 12, 13])
    }

    fn dense_spec() -> ArenaSpec {
        ArenaSpec::dense(
            "dense",
            SensorNode::submilliwatt_class(),
            solar_class(),
            Environment::outdoor_temperate,
        )
        .with_contenders(mixed_roster())
        .with_seeds(&[11, 12, 13])
    }

    #[test]
    fn every_lane_matches_its_independent_run() {
        let horizon = Seconds::from_hours(3.0);
        let out = run_arena(
            &boxed_spec(),
            ArenaConfig::over(horizon).keep_lane_results(),
        );
        let lanes = out.lane_results.expect("kept");
        let spec = boxed_spec();
        for (si, &seed) in spec.seeds().iter().enumerate() {
            for (ci, contender) in spec.contenders().iter().enumerate() {
                let mut platform = solar_unit();
                let mut policy = (contender.policy)(seed);
                let reference = run_simulation(
                    &mut platform,
                    &Environment::outdoor_temperate(seed),
                    &SensorNode::submilliwatt_class(),
                    policy.as_mut(),
                    SimConfig::over(horizon),
                );
                assert_eq!(
                    lanes[si * spec.contenders().len() + ci],
                    reference,
                    "lane ({seed}, {})",
                    contender.name()
                );
            }
        }
    }

    #[test]
    fn dense_lanes_match_boxed_lanes_bitwise() {
        let horizon = Seconds::from_hours(3.0);
        let config = ArenaConfig::over(horizon).keep_lane_results();
        let dense = run_arena(&dense_spec(), config);
        let boxed = run_arena(&boxed_spec(), config);
        assert_eq!(dense.lane_results, boxed.lane_results);
        assert_eq!(dense.summary.standings, boxed.summary.standings);
    }

    #[test]
    fn dense_tiers_agree_bitwise() {
        let horizon = Seconds::from_hours(2.0);
        let batched = run_arena(
            &dense_spec(),
            ArenaConfig::over(horizon).keep_lane_results(),
        );
        let scalar = run_arena(
            &dense_spec(),
            ArenaConfig::over(horizon)
                .with_dense_tier(DenseSolveTier::Scalar)
                .keep_lane_results(),
        );
        assert_eq!(batched.lane_results, scalar.lane_results);
        assert_eq!(batched.summary, scalar.summary);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let reference = run_arena(
            &dense_spec(),
            ArenaConfig::over(Seconds::from_hours(2.0)).with_threads(1),
        );
        for threads in [2, 3, 7] {
            let out = run_arena(
                &dense_spec(),
                ArenaConfig::over(Seconds::from_hours(2.0)).with_threads(threads),
            );
            assert_eq!(out.summary, reference.summary, "{threads} threads");
        }
    }

    #[test]
    fn standings_rank_by_served_fraction() {
        // A starving load: the big fixed duty must brown out, the tiny
        // one serves nearly everything.
        let spec = ArenaSpec::boxed(
            "starved",
            SensorNode::milliwatt_class(),
            |_| Box::new(solar_unit()),
            Environment::indoor_office,
        )
        .with_contender(Contender::new("greedy", |_| {
            Box::new(FixedDuty::new(DutyCycle::ONE))
        }))
        .with_contender(Contender::new("frugal", |_| {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.01)))
        }))
        .with_seeds(&[5]);
        let out = run_arena(&spec, ArenaConfig::over(Seconds::from_hours(6.0)));
        let s = &out.summary.standings;
        assert_eq!(s[0].name, "frugal");
        assert_eq!(s[0].rank, 1);
        assert_eq!(s[1].name, "greedy");
        assert_eq!(s[1].rank, 2);
        assert!(s[0].served_fraction > s[1].served_fraction);
    }

    #[test]
    fn cancellation_returns_none() {
        let token = CancelToken::new();
        token.cancel();
        let out = run_arena_controlled(
            &dense_spec(),
            ArenaConfig::over(Seconds::from_hours(2.0)),
            FleetControl {
                cancel: Some(&token),
                progress: None,
            },
        )
        .expect("valid spec");
        assert!(out.is_none());
    }

    #[test]
    fn rejects_empty_roster_and_seeds() {
        let no_contenders = ArenaSpec::dense(
            "empty",
            SensorNode::submilliwatt_class(),
            solar_class(),
            Environment::outdoor_temperate,
        );
        assert!(run_arena_controlled(
            &no_contenders,
            ArenaConfig::over(Seconds::from_hours(1.0)),
            FleetControl::default(),
        )
        .is_err());
        let no_seeds = dense_spec().with_seeds(&[]);
        assert!(run_arena_controlled(
            &no_seeds,
            ArenaConfig::over(Seconds::from_hours(1.0)),
            FleetControl::default(),
        )
        .is_err());
    }

    #[test]
    fn default_roster_is_adaptive_and_distinct() {
        let roster = default_contenders();
        assert!(roster.len() >= 8);
        let mut names: Vec<&str> = roster.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), roster.len(), "duplicate contender names");
        for want in [
            "forecast-budget-12h",
            "forecast-select-12h",
            "hill-climb",
            "failover(energy-neutral)",
        ] {
            assert!(roster.iter().any(|c| c.name() == want), "missing {want}");
        }
    }

    #[test]
    fn failover_counts_surface_in_standings() {
        // A harsh indoor scenario collapses the store under an
        // aggressive inner policy; the wrapper's trips must surface.
        let spec = ArenaSpec::boxed(
            "failover probe",
            SensorNode::milliwatt_class(),
            |_| Box::new(solar_unit()),
            Environment::indoor_office,
        )
        .with_contender(Contender::new("failover(greedy)", |_| {
            Box::new(FailoverPolicy::new(Box::new(FixedDuty::new(
                DutyCycle::ONE,
            ))))
        }))
        .with_seeds(&[3]);
        let out = run_arena(&spec, ArenaConfig::over(Seconds::from_hours(12.0)));
        let standing = &out.summary.standings[0];
        assert!(
            standing.failovers > 0,
            "expected failover trips, got {standing:?}"
        );
    }
}
