//! Fleet-scale simulation: thousands-to-millions of heterogeneous nodes
//! stepped in one run.
//!
//! The survey's deployments are not single nodes: a structural-health or
//! agricultural network (System D's MPWiNode, System G's Enviromote) is a
//! *population* of harvesting platforms scattered over a handful of sites,
//! each node seeing slightly different conditions. The fleet engine models
//! exactly that:
//!
//! * a small set of **sites** (seeded [`Environment`]s), whose condition
//!   fields are sampled once per site into a contiguous table and shared
//!   read-only by every member node;
//! * **groups** of nodes per site (platform class × policy × load),
//!   each node built from a per-node seed so populations can be
//!   heterogeneous;
//! * optional per-node **jitter** ([`EnvJitter`]): seeded multiplicative
//!   spread on each ambient channel, so co-sited nodes decorrelate the
//!   way shaded/sun-struck panels on neighbouring poles do.
//!
//! Nodes never interact, so the engine shards the population across the
//! crate's scoped worker pool and merges per-shard results in shard
//! order. Every per-node trajectory is a pure function of the spec and
//! config, which makes the whole run **bit-identical at any thread count
//! and any shard size** — the same guarantee the ensemble runner gives,
//! extended to populations.
//!
//! # Environment cadence
//!
//! [`EnvCadence::PerStep`] gives each step its own snapshot and is
//! bit-identical to running [`crate::run_simulation`] once per node.
//! [`EnvCadence::PerWindow`] samples each site once per control window
//! and holds that snapshot (including its `time` field) for every step in
//! the window — the fleet-scale semantic from the issue: condition fields
//! move at control cadence, and the operating-point kernel caches replay
//! the window's first solve for the remaining steps.
//!
//! # The dense lane
//!
//! Most survey deployments are populations of one *shape*: a single
//! harvester channel feeding a single buffer through one output
//! converter. [`DenseGroup`] declares that shape with concrete types, and
//! the engine runs it on a monomorphized fast path: the expensive
//! operating-point solve is hoisted out of the per-node loop (one
//! representative channel is driven once per control window and its
//! [`HarvestStep`]s fanned out to every member — exact because a member
//! channel's repeat steps are memo replays, see
//! [`InputChannel::is_replayable`]), while the per-step store balance
//! runs over the concrete storage type with no dynamic dispatch. A dense
//! node is bit-identical to the same hardware built as a
//! [`mseh_core::PowerUnit`] in a boxed [`FleetGroup`] — the tests assert
//! it — the lane only removes redundant work, never changes arithmetic.
//!
//! Dense groups additionally step on a **batched struct-of-arrays
//! tier** ([`DenseSolveTier`]): contiguous runs of member nodes become
//! lanes of one [`mseh_storage::SupercapLanes`] or
//! [`mseh_storage::BatteryLanes`] population, and the per-step store
//! updates run as masked whole-lane passes over contiguous `f64`
//! arrays instead of one call per node (supercap energy→voltage Newton
//! inversions as fixed-iteration batch passes, battery self-discharge
//! as one `powf` per distinct idle `dt` lane-wide). The batch kernels
//! replicate the scalar iterate sequence exactly (see
//! [`mseh_units::BatchSolve`]), so the batched tier is bit-identical to
//! the scalar one; an opt-in interpolation tier trades exact supercap
//! voltages for a table lookup with a recorded deviation bound
//! ([`FleetSummary::interp_max_deviation`]). Boxed [`FleetGroup`]s
//! whose members match a monomorphized class can borrow the same
//! kernels via [`FleetGroup::with_dense_class`].
//!
//! # Examples
//!
//! ```
//! use mseh_sim::{run_fleet, FleetConfig, FleetGroup, FleetSpec};
//! use mseh_core::{PortRequirement, PowerUnit, StoreRole};
//! use mseh_env::Environment;
//! use mseh_node::{FixedDuty, SensorNode};
//! use mseh_power::DcDcConverter;
//! use mseh_storage::Supercap;
//! use mseh_units::{DutyCycle, Seconds, Volts};
//!
//! let mut spec = FleetSpec::new();
//! let site = spec.add_site(Environment::indoor_office(42));
//! spec.add_group(
//!     FleetGroup::new(
//!         "buffered nodes",
//!         100,
//!         site,
//!         SensorNode::submilliwatt_class(),
//!         |_seed| {
//!             let mut cap = Supercap::edlc_22f();
//!             cap.set_voltage(Volts::new(2.5));
//!             Box::new(
//!                 PowerUnit::builder("node")
//!                     .store_port(
//!                         PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
//!                         Some(Box::new(cap)),
//!                         StoreRole::PrimaryBuffer,
//!                         true,
//!                     )
//!                     .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
//!                     .build(),
//!             )
//!         },
//!         |_seed| Box::new(FixedDuty::new(DutyCycle::saturating(0.05))),
//!     )
//!     .with_seed(7),
//! );
//! let out = run_fleet(&spec, FleetConfig::over(Seconds::from_hours(2.0)));
//! assert_eq!(out.summary.population, 100);
//! assert!(out.summary.audit_relative < 1e-6);
//! ```

use crate::cancel::{tripped, CancelToken};
use crate::parallel::{par_map_with, thread_count};
use crate::platform::Platform;
use crate::runner::{SimConfig, SimResult};
use mseh_env::rng::{Noise, StreamId};
use mseh_env::{EnvConditions, EnvJitter, EnvSampler, Environment, JitterFactors};
use mseh_harvesters::CacheStats;
use mseh_node::{DutyCyclePolicy, EnergyStatus, MonitoringLevel, SensorNode};
use mseh_power::{DcDcConverter, HarvestStep, InputChannel, PowerStage};
use mseh_storage::{Battery, Storage, Supercap};
use mseh_units::{Joules, Ratio, Seconds, Volts, Watts};

pub(crate) mod dense_lanes;

/// Stream on each group's seed from which per-node seeds are drawn
/// (disjoint from the environment's reserved streams and the jitter
/// streams 100+, which run on the *node* seed).
const NODE_SEED_STREAM: StreamId = StreamId(90);

/// How often member nodes re-sample their site's conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvCadence {
    /// A fresh snapshot every step — bit-identical to running
    /// [`crate::run_simulation`] once per node against the site.
    PerStep,
    /// One snapshot per control window, held (including its `time`
    /// field) for every step in the window. This is the fleet-scale
    /// semantic: conditions move at control cadence and the kernel
    /// caches replay the window's first operating-point solve for the
    /// remaining steps.
    PerWindow,
}

/// How the dense lane solves its per-node storage updates.
///
/// [`Scalar`](Self::Scalar) and [`Batched`](Self::Batched) are
/// bit-identical by contract: the batch kernels replicate the scalar
/// iterate sequence under a convergence mask instead of inventing a new
/// numerical scheme (see [`mseh_units::BatchSolve`]), and the tests
/// assert full [`FleetSummary`] equality between the tiers.
/// [`Interpolated`](Self::Interpolated) trades exact supercap voltages
/// for a per-run interpolation table sampled from the exact solver; its
/// recorded worst-case voltage deviation surfaces as
/// [`FleetSummary::interp_max_deviation`], and the conservation audit
/// still closes exactly (table residuals are charged to losses).
///
/// The tier governs every [`DenseGroup`] — supercap-store *and*
/// battery-store — plus boxed [`FleetGroup`]s opted in via
/// [`FleetGroup::with_dense_class`]. Battery lanes have no iterative
/// inversion to interpolate, so they step the exact batched kernels
/// under [`Interpolated`](Self::Interpolated) too. Groups the gate
/// cannot cover (jittered under per-step cadence, or a channel without
/// window-lane support) fall back to the scalar path — same results,
/// scalar speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseSolveTier {
    /// Per-node scalar [`mseh_storage::Storage`] calls — the reference
    /// path.
    Scalar,
    /// Struct-of-arrays Newton passes over contiguous lanes (fixed
    /// iteration schedule under a convergence mask, no per-node early
    /// exit). Bit-identical to [`Scalar`](Self::Scalar).
    Batched,
    /// Batched stepping with the supercap energy→voltage inversion
    /// replaced by a per-run interpolation table.
    Interpolated {
        /// Number of equally-spaced energy knots (min 2); deviation
        /// shrinks quadratically with the count.
        samples: usize,
    },
}

/// Builds one node's platform from its per-node seed.
pub type PlatformFactory = dyn Fn(u64) -> Box<dyn Platform> + Send + Sync;
/// Builds one node's duty-cycle policy from its per-node seed.
pub type PolicyFactory = dyn Fn(u64) -> Box<dyn DutyCyclePolicy> + Send + Sync;

/// A homogeneous slice of the fleet: `count` nodes of one platform class
/// at one site, sharing a load model and policy kind. Per-node seeds let
/// the factories introduce intra-group heterogeneity.
pub struct FleetGroup {
    name: String,
    count: usize,
    site: usize,
    seed: u64,
    jitter: EnvJitter,
    node: SensorNode,
    platform: Box<PlatformFactory>,
    policy: Box<PolicyFactory>,
    // Boxed: the class template embeds a full store and would otherwise
    // dominate every FleetGroup's footprint (clippy: large_enum_variant
    // on GroupEntry).
    dense_class: Option<Box<DenseClass>>,
}

impl FleetGroup {
    /// A group of `count` nodes at site index `site`, with no jitter and
    /// group seed 0. The factories receive each node's derived seed.
    pub fn new(
        name: &str,
        count: usize,
        site: usize,
        node: SensorNode,
        platform: impl Fn(u64) -> Box<dyn Platform> + Send + Sync + 'static,
        policy: impl Fn(u64) -> Box<dyn DutyCyclePolicy> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            count,
            site,
            seed: 0,
            jitter: EnvJitter::NONE,
            node,
            platform: Box::new(platform),
            policy: Box::new(policy),
            dense_class: None,
        }
    }

    /// Sets the group seed from which per-node seeds are derived.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-node environment jitter applied to the site's
    /// conditions (seeded per node; [`EnvJitter::NONE`] is bit-exact
    /// pass-through).
    pub fn with_jitter(mut self, jitter: EnvJitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Opts the group's members into the dense lane kernels by
    /// declaring the monomorphized class they all match (see
    /// [`DenseClass`]). When the batched gate is open
    /// ([`DenseSolveTier`] other than scalar; jittered groups
    /// additionally need per-window cadence and a window-batchable
    /// channel) the engine solves the members on the struct-of-arrays
    /// kernels instead of boxed [`Platform::step`] calls, keeping boxed
    /// per-node bookkeeping (per-node seeds, policies and jitter
    /// factors are derived exactly as the boxed path derives them).
    ///
    /// The declaration is a contract: every member the factory builds
    /// must match the class. The engine verifies the first member at
    /// run start — the platform must report
    /// [`Platform::supports_dense_kernels`] and its storage books must
    /// match the declared template bit for bit — and rejects the run
    /// otherwise; heterogeneity beyond member 0 is the caller's
    /// responsibility. Kernel-cache counters are synthesized from the
    /// lane replay pattern rather than read from member channels, so
    /// summaries match the plain boxed path everywhere except
    /// [`FleetSummary::kernel_cache`].
    pub fn with_dense_class(mut self, class: DenseClass) -> Self {
        self.dense_class = Some(Box::new(class));
        self
    }

    /// The group's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes in the group.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl core::fmt::Debug for FleetGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FleetGroup")
            .field("name", &self.name)
            .field("count", &self.count)
            .field("site", &self.site)
            .field("seed", &self.seed)
            .field("jitter", &self.jitter)
            .finish_non_exhaustive()
    }
}

/// Builds a dense-lane group's input channel. Every member node shares
/// one channel definition (that homogeneity is what lets the engine
/// hoist the operating-point solve out of the per-node loop);
/// intra-group spread comes from [`EnvJitter`], not the factory.
pub type ChannelFactory = dyn Fn() -> InputChannel + Send + Sync;

/// The concrete storage buffer of a dense-lane group, cloned per node
/// from the template (including its initial state of charge).
#[derive(Debug, Clone)]
pub enum DenseStore {
    /// A supercapacitor buffer.
    Supercap(Supercap),
    /// A battery buffer.
    Battery(Battery),
}

/// The monomorphized dense-lane class a boxed [`FleetGroup`] declares
/// its members match so they may borrow the batched struct-of-arrays
/// kernels ([`FleetGroup::with_dense_class`]): the concrete channel,
/// output converter and store template plus the supervisor overhead and
/// monitoring tier — the same parts a [`DenseGroup`] declares directly.
///
/// Defaults match [`DenseGroup::new`]: zero supervisor overhead and
/// [`MonitoringLevel::Full`] reporting; override with the builders to
/// mirror the members' actual supervisor.
pub struct DenseClass {
    pub(crate) channel: Box<ChannelFactory>,
    pub(crate) output: DcDcConverter,
    pub(crate) store: DenseStore,
    pub(crate) supervisor_overhead: Watts,
    pub(crate) monitoring: MonitoringLevel,
}

impl DenseClass {
    /// Declares a class from its concrete parts. The channel factory
    /// must build the same channel every member's platform carries;
    /// the store template must match each member's device bit for bit
    /// (the engine cross-checks capacity, stored energy and losses
    /// against member 0 at run start).
    pub fn new(
        channel: impl Fn() -> InputChannel + Send + Sync + 'static,
        output: DcDcConverter,
        store: DenseStore,
    ) -> Self {
        Self {
            channel: Box::new(channel),
            output,
            store,
            supervisor_overhead: Watts::ZERO,
            monitoring: MonitoringLevel::Full,
        }
    }

    /// Sets the supervisory standing draw (the members'
    /// `Supervisor::overhead`).
    pub fn with_supervisor_overhead(mut self, overhead: Watts) -> Self {
        self.supervisor_overhead = overhead;
        self
    }

    /// Sets the monitoring tier (the members' `Supervisor::monitoring`;
    /// the lane kernels model no sense-ADC quantization, which the
    /// platform probe enforces).
    pub fn with_monitoring(mut self, monitoring: MonitoringLevel) -> Self {
        self.monitoring = monitoring;
        self
    }
}

impl core::fmt::Debug for DenseClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DenseClass")
            .field("store", &self.store)
            .field("supervisor_overhead", &self.supervisor_overhead)
            .field("monitoring", &self.monitoring)
            .finish_non_exhaustive()
    }
}

/// A homogeneous platform class on the fleet's **dense lane**: `count`
/// nodes of the survey's most common shape — one harvester channel, one
/// buffer, one output converter — stepped by a monomorphized kernel with
/// the channel solve shared across the group.
///
/// Semantics are identical to a [`FleetGroup`] whose platform is a
/// [`mseh_core::PowerUnit`] with the same parts and a default supervisor
/// (override the overhead and monitoring tier with
/// [`with_supervisor_overhead`](Self::with_supervisor_overhead) /
/// [`with_monitoring`](Self::with_monitoring)). Under
/// [`EnvCadence::PerWindow`] the channel must be replayable
/// ([`InputChannel::is_replayable`]) — true for the gated controllers
/// (fixed-point, fractional-V_oc with its sample interval inside `dt`)
/// with the kernel cache on; the engine asserts it at run start.
pub struct DenseGroup {
    name: String,
    count: usize,
    site: usize,
    seed: u64,
    jitter: EnvJitter,
    node: SensorNode,
    channel: Box<ChannelFactory>,
    output: DcDcConverter,
    store: DenseStore,
    supervisor_overhead: Watts,
    monitoring: MonitoringLevel,
    policy: Box<PolicyFactory>,
}

impl DenseGroup {
    /// A dense group of `count` nodes at site index `site`, with no
    /// jitter, group seed 0, zero supervisor overhead and
    /// [`MonitoringLevel::Full`] energy reporting.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        count: usize,
        site: usize,
        node: SensorNode,
        channel: impl Fn() -> InputChannel + Send + Sync + 'static,
        output: DcDcConverter,
        store: DenseStore,
        policy: impl Fn(u64) -> Box<dyn DutyCyclePolicy> + Send + Sync + 'static,
    ) -> Self {
        Self {
            name: name.to_string(),
            count,
            site,
            seed: 0,
            jitter: EnvJitter::NONE,
            node,
            channel: Box::new(channel),
            output,
            store,
            supervisor_overhead: Watts::ZERO,
            monitoring: MonitoringLevel::Full,
            policy: Box::new(policy),
        }
    }

    /// Sets the group seed from which per-node seeds are derived.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-node environment jitter (jittered dense nodes drive
    /// their own channel once per window instead of sharing the group
    /// table).
    pub fn with_jitter(mut self, jitter: EnvJitter) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the supervisory standing draw (the boxed equivalent's
    /// `Supervisor::overhead`).
    pub fn with_supervisor_overhead(mut self, overhead: Watts) -> Self {
        self.supervisor_overhead = overhead;
        self
    }

    /// Sets the monitoring tier the policy's [`EnergyStatus`] is clamped
    /// to (the boxed equivalent's `Supervisor::monitoring`; no sense-ADC
    /// quantization on the dense lane).
    pub fn with_monitoring(mut self, monitoring: MonitoringLevel) -> Self {
        self.monitoring = monitoring;
        self
    }

    /// The group's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes in the group.
    pub fn count(&self) -> usize {
        self.count
    }
}

impl core::fmt::Debug for DenseGroup {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DenseGroup")
            .field("name", &self.name)
            .field("count", &self.count)
            .field("site", &self.site)
            .field("seed", &self.seed)
            .field("jitter", &self.jitter)
            .field("store", &self.store)
            .finish_non_exhaustive()
    }
}

/// One population entry of a [`FleetSpec`]: either lane.
#[derive(Debug)]
pub enum GroupEntry {
    /// Arbitrary platforms behind dynamic dispatch ([`FleetGroup`]).
    Boxed(FleetGroup),
    /// The monomorphized single-channel/single-store lane
    /// ([`DenseGroup`], boxed: its inline store model dwarfs the
    /// boxed lane's pointers, and entries are per-group, not per-node).
    Dense(Box<DenseGroup>),
}

impl GroupEntry {
    /// The group's display name.
    pub fn name(&self) -> &str {
        match self {
            GroupEntry::Boxed(g) => &g.name,
            GroupEntry::Dense(g) => &g.name,
        }
    }

    /// Number of nodes in the group.
    pub fn count(&self) -> usize {
        match self {
            GroupEntry::Boxed(g) => g.count,
            GroupEntry::Dense(g) => g.count,
        }
    }

    /// The group's site index.
    pub fn site(&self) -> usize {
        match self {
            GroupEntry::Boxed(g) => g.site,
            GroupEntry::Dense(g) => g.site,
        }
    }
}

/// The fleet's population: sites plus node groups assigned to them.
/// Global node indices run in group declaration order (group 0's nodes
/// first), which fixes the deterministic merge order.
#[derive(Debug, Default)]
pub struct FleetSpec {
    sites: Vec<Environment>,
    groups: Vec<GroupEntry>,
}

impl FleetSpec {
    /// An empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a site environment, returning its index for
    /// [`FleetGroup::new`]'s `site` argument.
    pub fn add_site(&mut self, env: Environment) -> usize {
        self.sites.push(env);
        self.sites.len() - 1
    }

    /// Appends a boxed-lane node group. Panics if the group references
    /// an unknown site.
    pub fn add_group(&mut self, group: FleetGroup) -> &mut Self {
        self.check_site(&group.name, group.site);
        self.groups.push(GroupEntry::Boxed(group));
        self
    }

    /// Appends a dense-lane node group. Panics if the group references
    /// an unknown site.
    pub fn add_dense_group(&mut self, group: DenseGroup) -> &mut Self {
        self.check_site(&group.name, group.site);
        self.groups.push(GroupEntry::Dense(Box::new(group)));
        self
    }

    fn check_site(&self, name: &str, site: usize) {
        assert!(
            site < self.sites.len(),
            "group '{}' references site {} but only {} site(s) exist",
            name,
            site,
            self.sites.len()
        );
    }

    /// Total node count across all groups.
    pub fn population(&self) -> u64 {
        self.groups.iter().map(|g| g.count() as u64).sum()
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Registered groups, in declaration (= global node) order.
    pub fn groups(&self) -> &[GroupEntry] {
        &self.groups
    }
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Per-node stepping parameters. `record` is ignored: fleets never
    /// keep per-step traces.
    pub sim: SimConfig,
    /// Worker threads (`0` = [`thread_count`], which honours
    /// `MSEH_THREADS`). Results are bit-identical at any value.
    pub threads: usize,
    /// Nodes per shard (`0` = 1024). Results are bit-identical at any
    /// value; smaller shards balance heterogeneous groups better.
    pub shard_size: usize,
    /// How often member nodes re-sample site conditions.
    pub cadence: EnvCadence,
    /// Kernel-cache key tier applied to every node's platform (`None` =
    /// exact tier; `Some(m)` = quantized tier, see
    /// [`Platform::set_kernel_cache_quantization`]).
    pub quantize_drop_bits: Option<u32>,
    /// Also return a full [`SimResult`] per node (memory scales with
    /// population).
    pub keep_node_results: bool,
    /// How many worst-uptime nodes to list in
    /// [`FleetSummary::stragglers`].
    pub stragglers: usize,
    /// Solve tier for dense groups and opted-in boxed groups (default
    /// [`DenseSolveTier::Batched`], bit-identical to
    /// [`DenseSolveTier::Scalar`]).
    pub dense_tier: DenseSolveTier,
}

impl FleetConfig {
    /// Fleet defaults over `duration`: 60 s steps, 10-minute control
    /// windows, per-window cadence, auto threads, 1024-node shards,
    /// exact cache tier, 8 stragglers.
    pub fn over(duration: Seconds) -> Self {
        Self {
            sim: SimConfig::over(duration),
            threads: 0,
            shard_size: 0,
            cadence: EnvCadence::PerWindow,
            quantize_drop_bits: None,
            keep_node_results: false,
            stragglers: 8,
            dense_tier: DenseSolveTier::Batched,
        }
    }

    /// Switches to per-step sampling (bit-identical to per-node
    /// [`crate::run_simulation`] runs).
    pub fn exact_env(mut self) -> Self {
        self.cadence = EnvCadence::PerStep;
        self
    }

    /// Sets an explicit worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the shard width in nodes.
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        self.shard_size = shard_size;
        self
    }

    /// Sets the dense-lane solve tier.
    pub fn with_dense_tier(mut self, tier: DenseSolveTier) -> Self {
        self.dense_tier = tier;
        self
    }
}

/// Percentiles of the per-node uptime distribution (nearest-rank over
/// the population).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UptimePercentiles {
    /// Worst node.
    pub min: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Best node.
    pub max: f64,
    /// Population mean.
    pub mean: f64,
}

/// One entry in the worst-uptime straggler list.
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Global node index (group declaration order).
    pub node: u64,
    /// Name of the node's group.
    pub group: String,
    /// The node's site index.
    pub site: usize,
    /// The node's uptime (fraction of load energy served).
    pub uptime: f64,
    /// Steps with any shortfall.
    pub brownout_steps: u64,
}

/// Aggregate results of a fleet run. All totals fold per-node results in
/// global node order, so they are bit-identical at any thread count and
/// shard size.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Nodes simulated.
    pub population: u64,
    /// Steps each node took (including the fractional closer, if any).
    pub steps_per_node: u64,
    /// `population × steps_per_node` — the run's total work.
    pub node_steps: u64,
    /// Simulated span.
    pub duration: Seconds,
    /// Fraction of nodes with zero brown-out steps (energy-neutral under
    /// the survey's operating criterion).
    pub energy_neutral_fraction: f64,
    /// Distribution of per-node uptimes.
    pub uptime: UptimePercentiles,
    /// Fleet-level served fraction: `1 − shortfall / demanded`
    /// (energy-weighted, unlike the per-node mean).
    pub served_fraction: f64,
    /// Total bus energy harvested across the fleet.
    pub harvested: Joules,
    /// Total energy delivered to loads.
    pub delivered: Joules,
    /// Total unserved load energy.
    pub shortfall: Joules,
    /// Total load energy demanded.
    pub demanded: Joules,
    /// Total output-stage conversion loss.
    pub converter_losses: Joules,
    /// Energy stranded by active faults at run end, fleet-wide.
    pub stranded_energy: Joules,
    /// Minimum store voltage seen by any node.
    pub min_store_voltage: Volts,
    /// Fleet-aggregated conservation residual: |Σ signed per-node
    /// residuals| over total storage throughput (≈0; < 1e-6 asserted in
    /// debug builds).
    pub audit_relative: f64,
    /// Worst single node's relative audit residual.
    pub worst_node_audit: f64,
    /// Kernel-cache counters summed across all node platforms. Cache
    /// state never crosses nodes, so these are deterministic too.
    pub kernel_cache: CacheStats,
    /// Worst interpolation-table voltage deviation recorded by any
    /// batched run (`0` unless [`DenseSolveTier::Interpolated`] is
    /// active): the maximum |exact − interpolated| terminal voltage
    /// probed when each run's table was built.
    pub interp_max_deviation: f64,
    /// The `config.stragglers` worst-uptime nodes, worst first (ties by
    /// node index).
    pub stragglers: Vec<Straggler>,
}

/// Everything a fleet run returns.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Aggregates over the whole population.
    pub summary: FleetSummary,
    /// Per-node results when [`FleetConfig::keep_node_results`] is set
    /// (global node order; `traces` always `None`).
    pub node_results: Option<Vec<SimResult>>,
}

/// Shared, immutable step plan derived from the config (mirrors the
/// single-run kernel's step arithmetic exactly).
pub(crate) struct StepPlan {
    pub(crate) dt: Seconds,
    pub(crate) start_at: Seconds,
    pub(crate) duration: Seconds,
    pub(crate) full_steps: u64,
    pub(crate) frac_dt: Option<Seconds>,
    pub(crate) steps: u64,
    pub(crate) control_every: u64,
    pub(crate) cadence: EnvCadence,
    pub(crate) quantize_drop_bits: Option<u32>,
}

impl StepPlan {
    fn new(config: &FleetConfig) -> Self {
        Self::from_sim(config.sim, config.cadence, config.quantize_drop_bits)
    }

    /// Builds the plan straight from a [`SimConfig`] plus the sampling
    /// cadence and cache-key tier — shared with the policy arena, which
    /// has no [`FleetConfig`].
    pub(crate) fn from_sim(
        sim: SimConfig,
        cadence: EnvCadence,
        quantize_drop_bits: Option<u32>,
    ) -> Self {
        assert!(sim.dt.value() > 0.0, "dt must be positive");
        assert!(
            sim.duration >= sim.dt,
            "duration must cover at least one step"
        );
        // Identical step arithmetic to run_simulation: whole steps plus
        // an explicit fractional closer, with the same dust guard.
        let full_steps = (sim.duration.value() / sim.dt.value()).floor() as u64;
        let frac_dt = {
            let rem = sim.duration.value() - full_steps as f64 * sim.dt.value();
            (rem > sim.dt.value() * 1e-9).then(|| Seconds::new(rem))
        };
        let steps = full_steps + u64::from(frac_dt.is_some());
        let control_every = (sim.control_interval.value() / sim.dt.value())
            .round()
            .max(1.0) as u64;
        Self {
            dt: sim.dt,
            start_at: sim.start_at,
            duration: sim.duration,
            full_steps,
            frac_dt,
            steps,
            control_every,
            cadence,
            quantize_drop_bits,
        }
    }

    #[inline]
    pub(crate) fn time_at(&self, i: u64) -> Seconds {
        self.start_at + Seconds::new(i as f64 * self.dt.value())
    }

    /// Sample times for one site's condition table under the plan's
    /// cadence.
    pub(crate) fn table_times(&self) -> Vec<Seconds> {
        match self.cadence {
            EnvCadence::PerStep => (0..self.steps).map(|i| self.time_at(i)).collect(),
            EnvCadence::PerWindow => (0..self.steps)
                .step_by(self.control_every as usize)
                .map(|w| self.time_at(w))
                .collect(),
        }
    }
}

/// Everything the summary fold needs from one node, in plain scalars so
/// shards stay cheap to ship back.
#[derive(Clone)]
pub(crate) struct NodeOutcome {
    pub(crate) uptime: f64,
    pub(crate) samples: f64,
    pub(crate) harvested: Joules,
    pub(crate) delivered: Joules,
    pub(crate) shortfall: Joules,
    pub(crate) demanded: Joules,
    pub(crate) converter_losses: Joules,
    pub(crate) brownout_steps: u64,
    pub(crate) longest_outage_steps: u64,
    pub(crate) min_store_voltage: Volts,
    pub(crate) audit_residual: f64,
    pub(crate) residual_signed: f64,
    pub(crate) throughput: f64,
    pub(crate) stranded: Joules,
    pub(crate) cache: CacheStats,
    pub(crate) interp_deviation: f64,
}

impl NodeOutcome {
    pub(crate) fn to_sim_result(&self, duration: Seconds) -> SimResult {
        SimResult {
            duration,
            uptime: self.uptime,
            samples: self.samples,
            harvested: self.harvested,
            delivered: self.delivered,
            shortfall: self.shortfall,
            converter_losses: self.converter_losses,
            brownout_steps: self.brownout_steps,
            longest_outage_steps: self.longest_outage_steps,
            min_store_voltage: self.min_store_voltage,
            audit_residual: self.audit_residual,
            traces: None,
        }
    }
}

/// Runs one node's full trajectory. The loop body replicates
/// `run_simulation`'s unobserved hot path step for step — same window
/// structure, same accumulator order, same audit — so a per-step-cadence
/// fleet node is bit-identical to a standalone run. Returns `None` when
/// `cancel` trips, checked once per control window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_node(
    platform: &mut dyn Platform,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    rows: &[EnvConditions],
    factors: &JitterFactors,
    jittered: bool,
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
) -> Option<NodeOutcome> {
    let initial_stored = platform.total_stored_energy();
    let initial_losses = platform.storage_losses();

    let mut samples = 0.0;
    let mut harvested = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut shortfall = Joules::ZERO;
    let mut demanded = Joules::ZERO;
    let mut charged = Joules::ZERO;
    let mut discharged = Joules::ZERO;
    let mut brownout_steps = 0u64;
    let mut outage_run = 0u64;
    let mut longest_outage = 0u64;
    let mut converter_losses = Joules::ZERO;
    let mut min_v = Volts::new(f64::INFINITY);

    let mut window_ordinal = 0usize;
    let mut window_start = 0u64;
    while window_start < plan.steps {
        if tripped(cancel) {
            return None;
        }
        let window_end = (window_start + plan.control_every).min(plan.steps);
        let duty = policy.choose(
            node,
            &platform.energy_status().at(plan.time_at(window_start)),
        );
        let load = node.average_power(duty);
        let demand = node.step(duty, plan.dt);
        let load_energy = load * plan.dt;

        for j in window_start..window_end {
            let (step_dt, step_samples, step_load_energy) = match plan.frac_dt {
                Some(frac) if j == plan.full_steps => {
                    (frac, node.step(duty, frac).samples, load * frac)
                }
                _ => (plan.dt, demand.samples, load_energy),
            };
            let base = match plan.cadence {
                EnvCadence::PerStep => &rows[j as usize],
                EnvCadence::PerWindow => &rows[window_ordinal],
            };
            let local;
            let env = if jittered {
                local = factors.apply(base);
                &local
            } else {
                base
            };
            let report = platform.step(env, step_dt, load);

            harvested += report.harvested;
            delivered += report.delivered;
            shortfall += report.shortfall;
            charged += report.charged;
            discharged += report.discharged;
            converter_losses += report.converter_loss;
            demanded += step_load_energy;

            let served_fraction = if report.shortfall.value() > 0.0 {
                let full = (report.delivered + report.shortfall).value();
                if full > 0.0 {
                    report.delivered.value() / full
                } else {
                    0.0
                }
            } else {
                1.0
            };
            samples += step_samples * served_fraction;

            if report.shortfall.value() > 1e-12 {
                brownout_steps += 1;
                outage_run += 1;
                longest_outage = longest_outage.max(outage_run);
            } else {
                outage_run = 0;
            }
            min_v = min_v.min(report.store_voltage);
        }
        window_start = window_end;
        window_ordinal += 1;
    }

    let d_stored = platform.total_stored_energy() - initial_stored;
    let d_losses = platform.storage_losses() - initial_losses;
    let residual_signed = (charged - discharged - d_losses - d_stored).value();
    let throughput = (harvested + discharged + charged).value().max(1.0);
    let audit_residual = residual_signed.abs() / throughput;
    debug_assert!(
        audit_residual < 1e-6,
        "fleet node violated storage conservation: residual {residual_signed} J"
    );

    let uptime = if demanded.value() > 0.0 {
        1.0 - (shortfall.value() / demanded.value()).clamp(0.0, 1.0)
    } else {
        1.0
    };

    Some(NodeOutcome {
        uptime,
        samples,
        harvested,
        delivered,
        shortfall,
        demanded,
        converter_losses,
        brownout_steps,
        longest_outage_steps: longest_outage,
        min_store_voltage: min_v,
        audit_residual,
        residual_signed,
        throughput,
        stranded: platform.stranded_energy(),
        cache: platform.kernel_cache_stats(),
        interp_deviation: 0.0,
    })
}

/// Drives one representative channel through the run's full step
/// sequence, materializing the per-step [`HarvestStep`] table a dense
/// node replays. Returns the number of `channel.step` calls made; the
/// remaining `plan.steps − calls` table reads are replays of solves the
/// channel memoized.
///
/// Soundness: under [`EnvCadence::PerStep`] the driver performs exactly
/// the member step sequence. Under [`EnvCadence::PerWindow`] a member
/// channel's within-window repeat steps are memo hits (asserted via
/// [`InputChannel::is_replayable`] once the controller has settled after
/// its first solve), and a hit leaves controller state exactly where the
/// window's first solve left it — so skipping the repeats preserves both
/// the per-step outputs and the channel state bit for bit. The
/// fractional closing step always gets its own call (its `dt` differs).
/// Returns `None` when `cancel` trips, checked once per control window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_harvest_table(
    channel: &mut InputChannel,
    rows: &[EnvConditions],
    factors: &JitterFactors,
    jittered: bool,
    plan: &StepPlan,
    cancel: Option<&CancelToken>,
    out: &mut Vec<HarvestStep>,
) -> Option<u64> {
    out.clear();
    out.reserve(plan.steps as usize);
    let mut calls = 0u64;
    let mut probed = false;
    let mut window_ordinal = 0usize;
    let mut window_start = 0u64;
    while window_start < plan.steps {
        if tripped(cancel) {
            return None;
        }
        let window_end = (window_start + plan.control_every).min(plan.steps);
        for j in window_start..window_end {
            let step_dt = match plan.frac_dt {
                Some(frac) if j == plan.full_steps => frac,
                _ => plan.dt,
            };
            let replay =
                plan.cadence == EnvCadence::PerWindow && j > window_start && step_dt == plan.dt;
            if replay {
                out.push(out[window_start as usize]);
                continue;
            }
            let base = match plan.cadence {
                EnvCadence::PerStep => &rows[j as usize],
                EnvCadence::PerWindow => &rows[window_ordinal],
            };
            let local;
            let env = if jittered {
                local = factors.apply(base);
                &local
            } else {
                base
            };
            out.push(channel.step(env, step_dt));
            calls += 1;
            if !probed && plan.cadence == EnvCadence::PerWindow {
                probed = true;
                assert!(
                    channel.is_replayable(plan.dt),
                    "dense group requires a replayable channel under per-window \
                     cadence (kernel cache on, env-pure controller with its sample \
                     interval inside dt); use EnvCadence::PerStep or a boxed \
                     FleetGroup for this platform"
                );
            }
        }
        window_start = window_end;
        window_ordinal += 1;
    }
    Some(calls)
}

/// Runs one dense-lane node: the per-step arithmetic of
/// `PowerUnit::step` specialized to the one-channel/one-store shape,
/// monomorphized over the concrete storage type, with the channel's
/// work already materialized in `harvest`. Mirrors [`simulate_node`]'s
/// accumulator order exactly so lane choice never changes a result.
/// Returns `None` when `cancel` trips, checked once per control window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_node_dense<S: Storage + Clone>(
    template: &S,
    output: &DcDcConverter,
    supervisor_overhead: Watts,
    monitoring: MonitoringLevel,
    node: &SensorNode,
    policy: &mut dyn DutyCyclePolicy,
    harvest: &[HarvestStep],
    plan: &StepPlan,
    cache: CacheStats,
    cancel: Option<&CancelToken>,
) -> Option<NodeOutcome> {
    let mut store = template.clone();
    // The boxed path's recognized capacity defaults to the device's
    // datasheet capacity at attach time.
    let recognized = store.capacity();
    let initial_stored = store.stored_energy();
    let initial_losses = store.losses();
    let mut last_harvest = Watts::ZERO;

    let mut samples = 0.0;
    let mut harvested = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut shortfall = Joules::ZERO;
    let mut demanded = Joules::ZERO;
    let mut charged = Joules::ZERO;
    let mut discharged = Joules::ZERO;
    let mut brownout_steps = 0u64;
    let mut outage_run = 0u64;
    let mut longest_outage = 0u64;
    let mut converter_losses = Joules::ZERO;
    let mut min_v = Volts::new(f64::INFINITY);

    let mut window_start = 0u64;
    while window_start < plan.steps {
        if tripped(cancel) {
            return None;
        }
        let window_end = (window_start + plan.control_every).min(plan.steps);
        // `PowerUnit::energy_status` for a single primary store: actual
        // SoC over the device capacity, believed stored energy over the
        // recognized capacity, clamped to the monitoring tier.
        let status = {
            let cap = store.capacity();
            let soc_actual = if cap.value() > 0.0 {
                store.stored_energy().value() / cap.value()
            } else {
                0.0
            };
            EnergyStatus::full(
                store.voltage(),
                Ratio::new(soc_actual),
                recognized * soc_actual,
                last_harvest,
            )
            .clamped_to(monitoring)
        };
        let duty = policy.choose(node, &status.at(plan.time_at(window_start)));
        let load = node.average_power(duty);
        let demand = node.step(duty, plan.dt);
        let load_energy = load * plan.dt;

        for j in window_start..window_end {
            let (step_dt, step_samples, step_load_energy) = match plan.frac_dt {
                Some(frac) if j == plan.full_steps => {
                    (frac, node.step(duty, frac).samples, load * frac)
                }
                _ => (plan.dt, demand.samples, load_energy),
            };
            let hs = &harvest[j as usize];

            // --- PowerUnit::step, specialized ---
            let harvested_w = hs.delivered;
            let overhead_w = supervisor_overhead + output.quiescent() + hs.overhead;
            last_harvest = harvested_w;

            let store_v = store.voltage();
            let (load_in_w, servable) = if load.value() > 0.0 {
                if output.accepts_input_voltage(store_v) {
                    (output.input_for_output(load, store_v), true)
                } else {
                    (Watts::ZERO, false)
                }
            } else {
                (Watts::ZERO, true)
            };

            let e_h = harvested_w * step_dt;
            let e_load_in = load_in_w * step_dt;
            let e_ov = overhead_w * step_dt;
            let step_demand = e_load_in + e_ov;

            let mut step_charged = Joules::ZERO;
            let mut step_discharged = Joules::ZERO;
            let mut unmet = Joules::ZERO;
            if e_h >= step_demand {
                let surplus = e_h - step_demand;
                if surplus.value() > 0.0 {
                    step_charged = store.charge(surplus / step_dt, step_dt);
                }
            } else {
                let deficit = step_demand - e_h;
                if deficit.value() > 0.0 {
                    step_discharged = store.discharge(deficit / step_dt, step_dt);
                }
                unmet = (deficit - step_discharged).max(Joules::ZERO);
            }

            let (step_delivered, step_shortfall, step_conv_loss) = if !servable {
                (Joules::ZERO, load * step_dt, Joules::ZERO)
            } else if e_load_in.value() > 0.0 {
                let load_unmet = unmet.min(e_load_in);
                let served_in = e_load_in - load_unmet;
                let served = (served_in / e_load_in).clamp(0.0, 1.0);
                let full_load = load * step_dt;
                let step_delivered = full_load * served;
                (
                    step_delivered,
                    full_load * (1.0 - served),
                    (served_in - step_delivered).max(Joules::ZERO),
                )
            } else {
                (Joules::ZERO, Joules::ZERO, Joules::ZERO)
            };

            store.idle(step_dt);
            let report_v = store.voltage();
            // --- end PowerUnit::step ---

            harvested += e_h;
            delivered += step_delivered;
            shortfall += step_shortfall;
            charged += step_charged;
            discharged += step_discharged;
            converter_losses += step_conv_loss;
            demanded += step_load_energy;

            let served_fraction = if step_shortfall.value() > 0.0 {
                let full = (step_delivered + step_shortfall).value();
                if full > 0.0 {
                    step_delivered.value() / full
                } else {
                    0.0
                }
            } else {
                1.0
            };
            samples += step_samples * served_fraction;

            if step_shortfall.value() > 1e-12 {
                brownout_steps += 1;
                outage_run += 1;
                longest_outage = longest_outage.max(outage_run);
            } else {
                outage_run = 0;
            }
            min_v = min_v.min(report_v);
        }
        window_start = window_end;
    }

    let d_stored = store.stored_energy() - initial_stored;
    let d_losses = store.losses() - initial_losses;
    let residual_signed = (charged - discharged - d_losses - d_stored).value();
    let throughput = (harvested + discharged + charged).value().max(1.0);
    let audit_residual = residual_signed.abs() / throughput;
    debug_assert!(
        audit_residual < 1e-6,
        "dense fleet node violated storage conservation: residual {residual_signed} J"
    );

    let uptime = if demanded.value() > 0.0 {
        1.0 - (shortfall.value() / demanded.value()).clamp(0.0, 1.0)
    } else {
        1.0
    };

    Some(NodeOutcome {
        uptime,
        samples,
        harvested,
        delivered,
        shortfall,
        demanded,
        converter_losses,
        brownout_steps,
        longest_outage_steps: longest_outage,
        min_store_voltage: min_v,
        audit_residual,
        residual_signed,
        throughput,
        stranded: Joules::ZERO,
        cache,
        interp_deviation: 0.0,
    })
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// External control of a [`run_fleet_controlled`] run: a cooperative
/// cancellation token and a progress callback, both optional. The
/// default value is "no control" — exactly [`run_fleet`]'s behaviour.
#[derive(Default, Clone, Copy)]
pub struct FleetControl<'a> {
    /// Checked at control-window granularity by every lane; a tripped
    /// token makes the run return `Ok(None)` within one control window
    /// of compute per in-flight node.
    pub cancel: Option<&'a CancelToken>,
    /// Called with `(nodes_completed, population)` as shards finish.
    /// Completion order is scheduling-dependent, but the reported
    /// counts are monotone and the final call always reports the full
    /// population.
    pub progress: Option<&'a (dyn Fn(u64, u64) + Sync)>,
}

impl core::fmt::Debug for FleetControl<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FleetControl")
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.map(|_| "Fn"))
            .finish()
    }
}

/// Runs the whole fleet described by `spec` under `config`.
///
/// Per-node trajectories are pure functions of the spec (group seed →
/// node seed → platform, policy, jitter) and the shared per-site
/// condition tables, and the summary folds per-node outcomes in global
/// node order — so the output is bit-identical at any
/// [`FleetConfig::threads`] and [`FleetConfig::shard_size`].
///
/// # Panics
///
/// Panics on an empty population, a non-positive `dt`, or a duration
/// shorter than one step. Long-running embeddings that must survive a
/// malformed spec (the `mseh serve` daemon) use
/// [`run_fleet_controlled`], which reports those as `Err` instead.
pub fn run_fleet(spec: &FleetSpec, config: FleetConfig) -> FleetResult {
    match run_fleet_controlled(spec, config, FleetControl::default()) {
        Ok(Some(result)) => result,
        Ok(None) => unreachable!("no cancel token was installed"),
        Err(message) => panic!("{message}"),
    }
}

/// Verifies a boxed group's declared [`DenseClass`] against its
/// member-0 platform before the batched gate opens: the platform must
/// report the dense-kernel shape
/// ([`Platform::supports_dense_kernels`]) and its storage books must
/// match the declared template bit for bit. Factories receive per-node
/// seeds, so the engine can only spot-check the first member cheaply;
/// the opt-in contract is that every member matches the class.
fn validate_dense_class(g: &FleetGroup, class: &DenseClass) -> Result<(), String> {
    let node_seed = Noise::new(g.seed).bits(NODE_SEED_STREAM, 0);
    let platform = (g.platform)(node_seed);
    if !platform.supports_dense_kernels() {
        return Err(format!(
            "group '{}': platform '{}' cannot borrow the dense kernels (the class needs exactly \
             one channel-backed harvester port, one primary-buffer store, no shared ports and no \
             sense-ADC status quantization)",
            g.name,
            platform.name(),
        ));
    }
    let store: &dyn Storage = match &class.store {
        DenseStore::Supercap(s) => s,
        DenseStore::Battery(b) => b,
    };
    let checks = [
        ("capacity", platform.storage_capacity(), store.capacity()),
        (
            "stored energy",
            platform.total_stored_energy(),
            store.stored_energy(),
        ),
        ("losses", platform.storage_losses(), store.losses()),
    ];
    for (what, got, want) in checks {
        if got.value().to_bits() != want.value().to_bits() {
            return Err(format!(
                "group '{}': declared dense-class store {what} {want} does not match the member \
                 platform's {got}",
                g.name,
            ));
        }
    }
    if platform.fault_counts() != (0, 0) || platform.stranded_energy() != Joules::ZERO {
        return Err(format!(
            "group '{}': platforms with active fault-injection wrappers cannot borrow the dense \
             kernels",
            g.name,
        ));
    }
    Ok(())
}

/// [`run_fleet`] as a daemon-facing entry point: spec/config validation
/// errors come back as `Err` instead of panicking, and a
/// [`FleetControl`] supplies optional cooperative cancellation
/// (`Ok(None)` when the token trips — partial results are discarded,
/// never returned torn) and progress reporting. An un-cancelled run
/// returns exactly [`run_fleet`]'s result, bit for bit.
pub fn run_fleet_controlled(
    spec: &FleetSpec,
    config: FleetConfig,
    control: FleetControl<'_>,
) -> Result<Option<FleetResult>, String> {
    let cancel = control.cancel;
    let population = spec.population();
    if population == 0 {
        return Err("fleet population must be non-empty".into());
    }
    let sim = config.sim;
    if !(sim.dt.value().is_finite() && sim.dt.value() > 0.0) {
        return Err(format!("dt must be positive and finite, got {}", sim.dt));
    }
    if !sim.duration.value().is_finite() || sim.duration < sim.dt {
        return Err(format!(
            "duration must cover at least one step and be finite, got {} at dt {}",
            sim.duration, sim.dt
        ));
    }
    if !(sim.control_interval.value().is_finite() && sim.control_interval.value() > 0.0) {
        return Err(format!(
            "control interval must be positive and finite, got {}",
            sim.control_interval
        ));
    }
    if let DenseSolveTier::Interpolated { samples } = config.dense_tier {
        if samples < 2 {
            return Err(format!(
                "interpolation tier needs at least 2 knots, got {samples}"
            ));
        }
    }
    let plan = StepPlan::new(&config);

    // One contiguous condition table per site, sampled through the same
    // batched `conditions_into` contract the single-run kernel uses
    // (bit-identical to per-instant sampling), shared read-only by every
    // shard.
    let times = plan.table_times();
    let tables: Vec<Vec<EnvConditions>> = spec
        .sites
        .iter()
        .map(|site| {
            let mut rows = Vec::new();
            site.conditions_into(&times, &mut rows);
            rows
        })
        .collect();

    // Group spans in global node order.
    let mut spans: Vec<(u64, u64)> = Vec::with_capacity(spec.groups.len());
    let mut cursor = 0u64;
    for g in &spec.groups {
        spans.push((cursor, cursor + g.count() as u64));
        cursor += g.count() as u64;
    }

    // Dense groups — supercap- and battery-store — step on the
    // struct-of-arrays batched tier unless the config pins `Scalar`,
    // and boxed groups with a declared [`DenseClass`] borrow the same
    // kernels. Unjittered groups always qualify (their lanes replay the
    // shared harvest table); jittered groups need a window-batchable
    // channel under per-window cadence — probed once per group — and
    // otherwise fall back to their scalar path. An opted-in boxed group
    // whose member platform contradicts its declared class is a spec
    // error, caught here before any node steps.
    let mut batched: Vec<bool> = Vec::with_capacity(spec.groups.len());
    for entry in &spec.groups {
        let open = match entry {
            GroupEntry::Dense(g) if config.dense_tier != DenseSolveTier::Scalar => {
                g.jitter.is_none()
                    || (plan.cadence == EnvCadence::PerWindow
                        && (g.channel)().supports_window_lanes(plan.dt))
            }
            GroupEntry::Boxed(g) if config.dense_tier != DenseSolveTier::Scalar => {
                match &g.dense_class {
                    Some(class) => {
                        let open = g.jitter.is_none()
                            || (plan.cadence == EnvCadence::PerWindow
                                && (class.channel)().supports_window_lanes(plan.dt));
                        if open {
                            validate_dense_class(g, class)?;
                        }
                        open
                    }
                    None => false,
                }
            }
            _ => false,
        };
        batched.push(open);
    }

    // Un-jittered dense classes share one harvest table group-wide: the
    // driver channel solves each control window once and every member
    // replays it. Jittered dense nodes drive their own channel inside
    // the shard (their conditions differ), still once per window. The
    // driver's solve counters are folded into the summary once per
    // group, after the per-node fold. Opted-in boxed groups get a table
    // only when their batched gate is open — otherwise they run plain
    // boxed and a table would skew the cache fold.
    let build_group_table =
        |factory: &ChannelFactory, site: usize| -> Option<(Vec<HarvestStep>, CacheStats)> {
            let mut channel = factory();
            if plan.quantize_drop_bits.is_some() {
                channel.set_cache_quantization(plan.quantize_drop_bits);
            }
            let mut table = Vec::new();
            build_harvest_table(
                &mut channel,
                &tables[site],
                &JitterFactors::IDENTITY,
                false,
                &plan,
                cancel,
                &mut table,
            )
            .map(|_| (table, channel.kernel_cache_stats()))
        };
    let mut dense_tables: Vec<Option<(Vec<HarvestStep>, CacheStats)>> =
        Vec::with_capacity(spec.groups.len());
    for (gi, entry) in spec.groups.iter().enumerate() {
        dense_tables.push(match entry {
            GroupEntry::Dense(g) if g.jitter.is_none() => {
                match build_group_table(g.channel.as_ref(), g.site) {
                    Some(built) => Some(built),
                    None => return Ok(None),
                }
            }
            GroupEntry::Boxed(g) if batched[gi] && g.jitter.is_none() => {
                let class = g
                    .dense_class
                    .as_ref()
                    .expect("batched boxed group declared a dense class");
                match build_group_table(class.channel.as_ref(), g.site) {
                    Some(built) => Some(built),
                    None => return Ok(None),
                }
            }
            _ => None,
        });
    }

    let shard_size = if config.shard_size == 0 {
        1024
    } else {
        config.shard_size
    } as u64;
    let shards: Vec<(u64, u64)> = (0..population)
        .step_by(shard_size as usize)
        .map(|lo| (lo, (lo + shard_size).min(population)))
        .collect();
    let threads = if config.threads == 0 {
        thread_count()
    } else {
        config.threads
    };

    let done_nodes = std::sync::atomic::AtomicU64::new(0);
    let run_shard = |&(lo, hi): &(u64, u64)| -> Vec<NodeOutcome> {
        let mut out = Vec::with_capacity((hi - lo) as usize);
        // Scratch harvest table reused by jittered dense nodes.
        let mut scratch: Vec<HarvestStep> = Vec::new();
        // First group containing `lo`, advanced linearly as the shard
        // walks the global index range.
        let mut gi = spans.partition_point(|&(_, end)| end <= lo);
        let mut cursor = lo;
        while cursor < hi {
            // A tripped token makes the shard bail with a short vector;
            // the caller discards everything and returns `Ok(None)`.
            if tripped(cancel) {
                return out;
            }
            while spans[gi].1 <= cursor {
                gi += 1;
            }
            let run_end = hi.min(spans[gi].1);
            // Batched struct-of-arrays tier: the shard's contiguous run
            // of this dense class — a dense group of either store kind,
            // or a boxed group opted in via its declared class — steps
            // as one lane population. Run composition never changes
            // results — every lane's arithmetic is independent of its
            // companions — so shard and thread geometry stay
            // bit-irrelevant.
            if batched[gi] {
                let (view, store) = match &spec.groups[gi] {
                    GroupEntry::Dense(g) => (
                        dense_lanes::DenseView {
                            seed: g.seed,
                            jitter: g.jitter,
                            node: &g.node,
                            channel: g.channel.as_ref(),
                            output: &g.output,
                            supervisor_overhead: g.supervisor_overhead,
                            monitoring: g.monitoring,
                            policy: g.policy.as_ref(),
                        },
                        &g.store,
                    ),
                    GroupEntry::Boxed(g) => {
                        let class = g
                            .dense_class
                            .as_ref()
                            .expect("batched boxed group declared a dense class");
                        (
                            dense_lanes::DenseView {
                                seed: g.seed,
                                jitter: g.jitter,
                                node: &g.node,
                                channel: class.channel.as_ref(),
                                output: &class.output,
                                supervisor_overhead: class.supervisor_overhead,
                                monitoring: class.monitoring,
                                policy: g.policy.as_ref(),
                            },
                            &class.store,
                        )
                    }
                };
                let site = spec.groups[gi].site();
                let shared = dense_tables[gi].as_ref().map(|(t, _)| t.as_slice());
                let ok = match store {
                    DenseStore::Supercap(template) => dense_lanes::simulate_supercap_run(
                        &view,
                        template,
                        spans[gi].0,
                        cursor,
                        run_end,
                        &tables[site],
                        shared,
                        &plan,
                        config.dense_tier,
                        cancel,
                        &mut out,
                    ),
                    DenseStore::Battery(template) => dense_lanes::simulate_battery_run(
                        &view,
                        template,
                        spans[gi].0,
                        cursor,
                        run_end,
                        &tables[site],
                        shared,
                        &plan,
                        cancel,
                        &mut out,
                    ),
                };
                if !ok {
                    return out;
                }
                cursor = run_end;
                continue;
            }
            for n in cursor..run_end {
                let within = n - spans[gi].0;
                match &spec.groups[gi] {
                    GroupEntry::Boxed(g) => {
                        let node_seed = Noise::new(g.seed).bits(NODE_SEED_STREAM, within);
                        let factors = JitterFactors::derive(g.jitter, node_seed);
                        let jittered = !g.jitter.is_none();
                        let mut platform = (g.platform)(node_seed);
                        let mut policy = (g.policy)(node_seed);
                        if plan.quantize_drop_bits.is_some() {
                            platform.set_kernel_cache_quantization(plan.quantize_drop_bits);
                        }
                        match simulate_node(
                            platform.as_mut(),
                            &g.node,
                            policy.as_mut(),
                            &tables[g.site],
                            &factors,
                            jittered,
                            &plan,
                            cancel,
                        ) {
                            Some(outcome) => out.push(outcome),
                            None => return out,
                        }
                    }
                    GroupEntry::Dense(g) => {
                        let node_seed = Noise::new(g.seed).bits(NODE_SEED_STREAM, within);
                        let mut policy = (g.policy)(node_seed);
                        // Per-node cache view: table reads beyond the
                        // driver's own calls are replays of memoized solves.
                        let mut cache = CacheStats::default();
                        let mut calls = 0u64;
                        let table: &[HarvestStep] = match &dense_tables[gi] {
                            Some((table, _)) => table,
                            None => {
                                let factors = JitterFactors::derive(g.jitter, node_seed);
                                let mut channel = (g.channel)();
                                if plan.quantize_drop_bits.is_some() {
                                    channel.set_cache_quantization(plan.quantize_drop_bits);
                                }
                                calls = match build_harvest_table(
                                    &mut channel,
                                    &tables[g.site],
                                    &factors,
                                    true,
                                    &plan,
                                    cancel,
                                    &mut scratch,
                                ) {
                                    Some(calls) => calls,
                                    None => return out,
                                };
                                cache = channel.kernel_cache_stats();
                                &scratch
                            }
                        };
                        cache.hits += plan.steps - calls;
                        let outcome = match &g.store {
                            DenseStore::Supercap(s) => simulate_node_dense(
                                s,
                                &g.output,
                                g.supervisor_overhead,
                                g.monitoring,
                                &g.node,
                                policy.as_mut(),
                                table,
                                &plan,
                                cache,
                                cancel,
                            ),
                            DenseStore::Battery(b) => simulate_node_dense(
                                b,
                                &g.output,
                                g.supervisor_overhead,
                                g.monitoring,
                                &g.node,
                                policy.as_mut(),
                                table,
                                &plan,
                                cache,
                                cancel,
                            ),
                        };
                        match outcome {
                            Some(outcome) => out.push(outcome),
                            None => return out,
                        }
                    }
                }
            }
            cursor = run_end;
        }
        if let Some(report) = control.progress {
            let done =
                hi - lo + done_nodes.fetch_add(hi - lo, std::sync::atomic::Ordering::Relaxed);
            report(done, population);
        }
        out
    };
    let shard_outcomes = par_map_with(threads.max(1), &shards, run_shard);

    // A tripped token may have left some shards short; partial results
    // are discarded wholesale rather than folded torn.
    let completed: u64 = shard_outcomes.iter().map(|s| s.len() as u64).sum();
    if tripped(cancel) || completed != population {
        return Ok(None);
    }

    // Fold in global node order (shard order = node order), so the
    // floating-point accumulation is independent of shard boundaries.
    let mut harvested = Joules::ZERO;
    let mut delivered = Joules::ZERO;
    let mut shortfall = Joules::ZERO;
    let mut demanded = Joules::ZERO;
    let mut converter_losses = Joules::ZERO;
    let mut stranded = Joules::ZERO;
    let mut residual_signed = 0.0;
    let mut throughput = 0.0;
    let mut worst_node_audit = 0.0f64;
    let mut min_v = Volts::new(f64::INFINITY);
    let mut neutral = 0u64;
    let mut interp_max_deviation = 0.0f64;
    let mut cache = CacheStats::default();
    let mut uptimes: Vec<f64> = Vec::with_capacity(population as usize);
    let mut node_results = config
        .keep_node_results
        .then(|| Vec::with_capacity(population as usize));

    for outcome in shard_outcomes.iter().flatten() {
        harvested += outcome.harvested;
        delivered += outcome.delivered;
        shortfall += outcome.shortfall;
        demanded += outcome.demanded;
        converter_losses += outcome.converter_losses;
        stranded += outcome.stranded;
        residual_signed += outcome.residual_signed;
        throughput += outcome.throughput;
        worst_node_audit = worst_node_audit.max(outcome.audit_residual);
        min_v = min_v.min(outcome.min_store_voltage);
        neutral += u64::from(outcome.brownout_steps == 0);
        interp_max_deviation = interp_max_deviation.max(outcome.interp_deviation);
        cache.hits += outcome.cache.hits;
        cache.misses += outcome.cache.misses;
        cache.invalidations += outcome.cache.invalidations;
        uptimes.push(outcome.uptime);
        if let Some(results) = node_results.as_mut() {
            results.push(outcome.to_sim_result(plan.duration));
        }
    }
    // Shared-table dense groups: the driver's actual solve counters enter
    // the books once per group (member nodes counted only replays).
    for driver in dense_tables.iter().flatten() {
        cache.hits += driver.1.hits;
        cache.misses += driver.1.misses;
        cache.invalidations += driver.1.invalidations;
    }

    let mean = uptimes.iter().sum::<f64>() / population as f64;
    let mut sorted = uptimes.clone();
    sorted.sort_by(f64::total_cmp);
    let uptime = UptimePercentiles {
        min: sorted[0],
        p05: percentile(&sorted, 0.05),
        p25: percentile(&sorted, 0.25),
        p50: percentile(&sorted, 0.50),
        p75: percentile(&sorted, 0.75),
        p95: percentile(&sorted, 0.95),
        max: sorted[sorted.len() - 1],
        mean,
    };

    // Worst-uptime stragglers, ties broken by node index.
    let mut ranked: Vec<(f64, u64)> = uptimes
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, i as u64))
        .collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let stragglers = ranked
        .iter()
        .take(config.stragglers.min(population as usize))
        .map(|&(u, n)| {
            let gi = spans.partition_point(|&(_, end)| end <= n);
            let outcome = {
                let shard = (n / shard_size) as usize;
                &shard_outcomes[shard][(n % shard_size) as usize]
            };
            Straggler {
                node: n,
                group: spec.groups[gi].name().to_string(),
                site: spec.groups[gi].site(),
                uptime: u,
                brownout_steps: outcome.brownout_steps,
            }
        })
        .collect();

    let audit_relative = residual_signed.abs() / throughput.max(1.0);
    debug_assert!(
        audit_relative < 1e-6,
        "fleet-aggregated conservation residual {residual_signed} J"
    );
    let served_fraction = if demanded.value() > 0.0 {
        1.0 - (shortfall.value() / demanded.value()).clamp(0.0, 1.0)
    } else {
        1.0
    };

    Ok(Some(FleetResult {
        summary: FleetSummary {
            population,
            steps_per_node: plan.steps,
            node_steps: population * plan.steps,
            duration: plan.duration,
            energy_neutral_fraction: neutral as f64 / population as f64,
            uptime,
            served_fraction,
            harvested,
            delivered,
            shortfall,
            demanded,
            converter_losses,
            stranded_energy: stranded,
            min_store_voltage: min_v,
            audit_relative,
            worst_node_audit,
            kernel_cache: cache,
            interp_max_deviation,
            stragglers,
        },
        node_results,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_simulation;
    use mseh_core::{PortRequirement, PowerUnit, StoreRole, Supervisor};
    use mseh_harvesters::PvModule;
    use mseh_node::{FixedDuty, VoltageThreshold};
    use mseh_power::{DcDcConverter, FractionalVoc, IdealDiode, InputChannel};
    use mseh_storage::Supercap;
    use mseh_units::{DutyCycle, Volts};

    fn duty() -> DutyCycle {
        DutyCycle::saturating(0.05)
    }

    fn solar_channel() -> InputChannel {
        InputChannel::new(
            Box::new(PvModule::outdoor_panel_half_watt()),
            Box::new(FractionalVoc::pv_standard()),
            Box::new(IdealDiode::nanopower()),
            Box::new(DcDcConverter::mppt_front_end_5v()),
        )
    }

    fn solar_cap() -> Supercap {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(1.8));
        cap
    }

    fn solar_unit_supervised(supervisor: Option<Supervisor>) -> PowerUnit {
        let mut builder = PowerUnit::builder("fleet node")
            .harvester_port(
                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                Some(solar_channel()),
                true,
            )
            .store_port(
                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(solar_cap())),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()));
        if let Some(s) = supervisor {
            builder = builder.supervisor(s);
        }
        builder.build()
    }

    fn solar_unit() -> PowerUnit {
        solar_unit_supervised(None)
    }

    /// The dense-lane declaration of exactly the hardware in
    /// [`solar_unit`] (default supervisor: zero overhead, no
    /// monitoring).
    fn solar_dense(name: &str, count: usize, site: usize, node: SensorNode) -> DenseGroup {
        DenseGroup::new(
            name,
            count,
            site,
            node,
            solar_channel,
            DcDcConverter::buck_boost_3v3(),
            DenseStore::Supercap(solar_cap()),
            |_| Box::new(FixedDuty::new(duty())),
        )
        .with_monitoring(MonitoringLevel::None)
    }

    fn small_spec(count: usize, jitter: EnvJitter) -> FleetSpec {
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(11));
        spec.add_group(
            FleetGroup::new(
                "pv",
                count,
                site,
                SensorNode::submilliwatt_class(),
                |_| Box::new(solar_unit()),
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_seed(5)
            .with_jitter(jitter),
        );
        spec
    }

    #[test]
    fn one_node_per_step_fleet_matches_run_simulation() {
        let horizon = Seconds::from_hours(3.0);
        let out = run_fleet(
            &small_spec(1, EnvJitter::NONE),
            FleetConfig {
                keep_node_results: true,
                ..FleetConfig::over(horizon)
            }
            .exact_env(),
        );
        let mut platform = solar_unit();
        let mut policy = FixedDuty::new(duty());
        let reference = run_simulation(
            &mut platform,
            &Environment::outdoor_temperate(11),
            &SensorNode::submilliwatt_class(),
            &mut policy,
            SimConfig::over(horizon),
        );
        let node = &out.node_results.expect("kept")[0];
        assert_eq!(*node, reference);
        assert_eq!(out.summary.harvested, reference.harvested);
        assert_eq!(out.summary.uptime.mean, reference.uptime);
    }

    #[test]
    fn bit_identical_across_threads_and_shard_sizes() {
        let run = |threads: usize, shard: usize| {
            run_fleet(
                &small_spec(37, EnvJitter::relative(0.2)),
                FleetConfig {
                    threads,
                    shard_size: shard,
                    ..FleetConfig::over(Seconds::from_hours(2.0))
                },
            )
            .summary
        };
        let reference = run(1, 37);
        for (threads, shard) in [(2, 5), (4, 64), (3, 1)] {
            assert_eq!(run(threads, shard), reference, "{threads}t/{shard}s");
        }
    }

    #[test]
    fn per_window_cadence_audits_and_hits_the_cache() {
        let out = run_fleet(
            &small_spec(4, EnvJitter::NONE),
            FleetConfig::over(Seconds::from_hours(4.0)),
        );
        assert!(out.summary.audit_relative < 1e-6);
        // Conditions are held within each 10-minute window, so the
        // channel memo replays at least the window's repeat steps.
        assert!(
            out.summary.kernel_cache.hits > 0,
            "{:?}",
            out.summary.kernel_cache
        );
    }

    #[test]
    fn stragglers_are_worst_uptime_nodes() {
        let mut spec = FleetSpec::new();
        let dark = spec.add_site(Environment::indoor_office(3));
        let sunny = spec.add_site(Environment::outdoor_temperate(3));
        // Milliwatt loads indoors brown out; submilliwatt outdoors don't.
        spec.add_group(FleetGroup::new(
            "starved",
            3,
            dark,
            SensorNode::milliwatt_class(),
            |_| Box::new(solar_unit()),
            |_| Box::new(FixedDuty::new(DutyCycle::ONE)),
        ));
        spec.add_group(FleetGroup::new(
            "healthy",
            3,
            sunny,
            SensorNode::submilliwatt_class(),
            |_| Box::new(solar_unit()),
            |_| Box::new(FixedDuty::new(duty())),
        ));
        let out = run_fleet(
            &spec,
            FleetConfig {
                stragglers: 3,
                ..FleetConfig::over(Seconds::from_hours(6.0))
            },
        );
        assert_eq!(out.summary.stragglers.len(), 3);
        for s in &out.summary.stragglers {
            assert_eq!(s.group, "starved", "{s:?}");
            assert!(s.uptime < 1.0);
        }
        assert!(out.summary.energy_neutral_fraction <= 0.5);
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn rejects_empty_fleet() {
        let mut spec = FleetSpec::new();
        spec.add_site(Environment::indoor_office(1));
        run_fleet(&spec, FleetConfig::over(Seconds::from_hours(1.0)));
    }

    #[test]
    fn one_node_dense_fleet_matches_run_simulation() {
        let horizon = Seconds::from_hours(3.0);
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(11));
        spec.add_dense_group(solar_dense(
            "pv dense",
            1,
            site,
            SensorNode::submilliwatt_class(),
        ));
        let out = run_fleet(
            &spec,
            FleetConfig {
                keep_node_results: true,
                ..FleetConfig::over(horizon)
            }
            .exact_env(),
        );
        let mut platform = solar_unit();
        let mut policy = FixedDuty::new(duty());
        let reference = run_simulation(
            &mut platform,
            &Environment::outdoor_temperate(11),
            &SensorNode::submilliwatt_class(),
            &mut policy,
            SimConfig::over(horizon),
        );
        let node = &out.node_results.expect("kept")[0];
        assert_eq!(*node, reference);
    }

    /// Summaries with the cache counters zeroed out: the dense lane
    /// necessarily books fewer solves, every physical quantity must
    /// still agree bit for bit.
    fn modulo_cache(mut s: FleetSummary) -> FleetSummary {
        s.kernel_cache = CacheStats::default();
        s
    }

    #[test]
    fn dense_lane_is_bit_identical_to_boxed_lane() {
        let horizon = Seconds::from_hours(4.0);
        let build = |dense: bool| {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(11));
            if dense {
                spec.add_dense_group(
                    solar_dense("pv", 6, site, SensorNode::submilliwatt_class())
                        .with_seed(5)
                        .with_jitter(EnvJitter::relative(0.2)),
                );
            } else {
                spec.add_group(
                    FleetGroup::new(
                        "pv",
                        6,
                        site,
                        SensorNode::submilliwatt_class(),
                        |_| Box::new(solar_unit()),
                        |_| Box::new(FixedDuty::new(duty())),
                    )
                    .with_seed(5)
                    .with_jitter(EnvJitter::relative(0.2)),
                );
            }
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        assert_eq!(modulo_cache(build(true)), modulo_cache(build(false)));
    }

    #[test]
    fn dense_status_replication_drives_policies_like_boxed() {
        // Full monitoring plus supervisor overhead: a voltage-threshold
        // policy must see an identical EnergyStatus on both lanes, and
        // the overhead must drain the books identically.
        let horizon = Seconds::from_hours(4.0);
        let overhead = Watts::new(40e-6);
        let dense = {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(23));
            spec.add_dense_group(
                DenseGroup::new(
                    "pv supervised",
                    3,
                    site,
                    SensorNode::submilliwatt_class(),
                    solar_channel,
                    DcDcConverter::buck_boost_3v3(),
                    DenseStore::Supercap(solar_cap()),
                    |_| Box::new(VoltageThreshold::supercap_ladder()),
                )
                .with_supervisor_overhead(overhead),
            );
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        let boxed = {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(23));
            let mut supervisor = Supervisor::none();
            supervisor.monitoring = MonitoringLevel::Full;
            supervisor.overhead = overhead;
            spec.add_group(FleetGroup::new(
                "pv supervised",
                3,
                site,
                SensorNode::submilliwatt_class(),
                move |_| Box::new(solar_unit_supervised(Some(supervisor))),
                |_| Box::new(VoltageThreshold::supercap_ladder()),
            ));
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        assert_eq!(modulo_cache(dense), modulo_cache(boxed));
    }

    #[test]
    fn dense_battery_group_runs_and_audits() {
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(31));
        let mut nimh = Battery::nimh_aa_pair();
        nimh.set_soc(0.5);
        spec.add_dense_group(
            DenseGroup::new(
                "pv + nimh",
                50,
                site,
                SensorNode::submilliwatt_class(),
                solar_channel,
                DcDcConverter::buck_boost_3v3(),
                DenseStore::Battery(nimh),
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_seed(9)
            .with_jitter(EnvJitter::relative(0.1)),
        );
        let out = run_fleet(&spec, FleetConfig::over(Seconds::from_hours(24.0)));
        assert_eq!(out.summary.population, 50);
        assert!(out.summary.audit_relative < 1e-6);
        assert!(out.summary.worst_node_audit < 1e-6);
        assert!(out.summary.harvested.value() > 0.0);
    }

    #[test]
    fn mixed_lane_fleet_is_bit_identical_across_geometry() {
        let mut nimh = Battery::nimh_aa_pair();
        nimh.set_soc(0.6);
        let build = || {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(17));
            spec.add_group(
                FleetGroup::new(
                    "boxed pv",
                    7,
                    site,
                    SensorNode::submilliwatt_class(),
                    |_| Box::new(solar_unit()),
                    |_| Box::new(FixedDuty::new(duty())),
                )
                .with_seed(1)
                .with_jitter(EnvJitter::relative(0.15)),
            );
            spec.add_dense_group(
                solar_dense("dense pv", 9, site, SensorNode::submilliwatt_class())
                    .with_seed(2)
                    .with_jitter(EnvJitter::relative(0.15)),
            );
            spec
        };
        let nimh_group = |spec: &mut FleetSpec, nimh: &Battery| {
            spec.add_dense_group(DenseGroup::new(
                "dense nimh",
                5,
                0,
                SensorNode::submilliwatt_class(),
                solar_channel,
                DcDcConverter::buck_boost_3v3(),
                DenseStore::Battery(nimh.clone()),
                |_| Box::new(FixedDuty::new(duty())),
            ));
        };
        let run = |threads: usize, shard: usize| {
            let mut spec = build();
            nimh_group(&mut spec, &nimh);
            run_fleet(
                &spec,
                FleetConfig {
                    threads,
                    shard_size: shard,
                    ..FleetConfig::over(Seconds::from_hours(2.0))
                },
            )
            .summary
        };
        let reference = run(1, 21);
        for (threads, shard) in [(2, 4), (4, 1024), (3, 1)] {
            assert_eq!(run(threads, shard), reference, "{threads}t/{shard}s");
        }
    }

    #[test]
    fn dense_battery_batched_matches_scalar_bitwise() {
        let mut nimh = Battery::nimh_aa_pair();
        nimh.set_soc(0.5);
        let build = |jitter: EnvJitter| {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(31));
            spec.add_dense_group(
                DenseGroup::new(
                    "pv + nimh",
                    23,
                    site,
                    SensorNode::submilliwatt_class(),
                    solar_channel,
                    DcDcConverter::buck_boost_3v3(),
                    DenseStore::Battery(nimh.clone()),
                    // Heterogeneous duties: the uniform fast path must
                    // materialize the full population on divergence.
                    |seed| {
                        let d = 0.02 + 0.06 * (seed % 5) as f64 / 5.0;
                        Box::new(FixedDuty::new(DutyCycle::saturating(d)))
                    },
                )
                .with_seed(9)
                .with_jitter(jitter),
            );
            spec
        };
        let run = |spec: &FleetSpec, tier: DenseSolveTier| {
            run_fleet(
                spec,
                FleetConfig {
                    dense_tier: tier,
                    ..FleetConfig::over(Seconds::from_hours(3.0))
                },
            )
            .summary
        };
        let plain = build(EnvJitter::NONE);
        assert_eq!(
            run(&plain, DenseSolveTier::Batched),
            run(&plain, DenseSolveTier::Scalar)
        );
        let jittered = build(EnvJitter::relative(0.2));
        assert_eq!(
            modulo_cache(run(&jittered, DenseSolveTier::Batched)),
            modulo_cache(run(&jittered, DenseSolveTier::Scalar))
        );
    }

    #[test]
    fn boxed_group_with_dense_class_matches_plain_boxed() {
        let horizon = Seconds::from_hours(4.0);
        let build = |opt_in: bool, jitter: EnvJitter| {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(11));
            let mut group = FleetGroup::new(
                "pv",
                6,
                site,
                SensorNode::submilliwatt_class(),
                |_| Box::new(solar_unit()),
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_seed(5)
            .with_jitter(jitter);
            if opt_in {
                group = group.with_dense_class(
                    DenseClass::new(
                        solar_channel,
                        DcDcConverter::buck_boost_3v3(),
                        DenseStore::Supercap(solar_cap()),
                    )
                    .with_monitoring(MonitoringLevel::None),
                );
            }
            spec.add_group(group);
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        for jitter in [EnvJitter::NONE, EnvJitter::relative(0.2)] {
            assert_eq!(
                modulo_cache(build(true, jitter)),
                modulo_cache(build(false, jitter)),
                "{jitter:?}"
            );
        }
        // Non-vacuity: the un-jittered opted-in group really took the
        // lane kernels — its synthesized cache counters differ from the
        // boxed channels' real ones.
        assert_ne!(
            build(true, EnvJitter::NONE).kernel_cache,
            build(false, EnvJitter::NONE).kernel_cache
        );
    }

    #[test]
    fn boxed_battery_opt_in_matches_plain_boxed() {
        let mut nimh = Battery::nimh_aa_pair();
        nimh.set_soc(0.6);
        let horizon = Seconds::from_hours(3.0);
        let build = |opt_in: bool| {
            let template = nimh.clone();
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::outdoor_temperate(17));
            let mut group = FleetGroup::new(
                "pv + nimh",
                5,
                site,
                SensorNode::submilliwatt_class(),
                move |_| {
                    Box::new(
                        PowerUnit::builder("fleet battery node")
                            .harvester_port(
                                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                                Some(solar_channel()),
                                true,
                            )
                            .store_port(
                                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                                Some(Box::new(template.clone())),
                                StoreRole::PrimaryBuffer,
                                true,
                            )
                            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
                            .build(),
                    )
                },
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_seed(3);
            if opt_in {
                let template = nimh.clone();
                group = group.with_dense_class(
                    DenseClass::new(
                        solar_channel,
                        DcDcConverter::buck_boost_3v3(),
                        DenseStore::Battery(template),
                    )
                    .with_monitoring(MonitoringLevel::None),
                );
            }
            spec.add_group(group);
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        assert_eq!(modulo_cache(build(true)), modulo_cache(build(false)));
        assert_ne!(build(true).kernel_cache, build(false).kernel_cache);
    }

    #[test]
    fn dense_class_contradictions_are_spec_errors() {
        let config = FleetConfig::over(Seconds::from_hours(1.0));
        // Probe failure: a store-only unit has no channel-backed
        // harvester port, so it cannot match any dense class.
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(11));
        spec.add_group(
            FleetGroup::new(
                "no harvester",
                2,
                site,
                SensorNode::submilliwatt_class(),
                |_| {
                    Box::new(
                        PowerUnit::builder("store only")
                            .store_port(
                                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                                Some(Box::new(solar_cap())),
                                StoreRole::PrimaryBuffer,
                                true,
                            )
                            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
                            .build(),
                    )
                },
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_dense_class(
                DenseClass::new(
                    solar_channel,
                    DcDcConverter::buck_boost_3v3(),
                    DenseStore::Supercap(solar_cap()),
                )
                .with_monitoring(MonitoringLevel::None),
            ),
        );
        let err = run_fleet_controlled(&spec, config, FleetControl::default())
            .expect_err("probe must reject the shape");
        assert!(err.contains("cannot borrow the dense kernels"), "{err}");

        // Book mismatch: a declared template at a different state of
        // charge than the members' actual device.
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(11));
        let mut wrong = solar_cap();
        wrong.set_voltage(Volts::new(2.5));
        spec.add_group(
            FleetGroup::new(
                "pv",
                2,
                site,
                SensorNode::submilliwatt_class(),
                |_| Box::new(solar_unit()),
                |_| Box::new(FixedDuty::new(duty())),
            )
            .with_dense_class(
                DenseClass::new(
                    solar_channel,
                    DcDcConverter::buck_boost_3v3(),
                    DenseStore::Supercap(wrong),
                )
                .with_monitoring(MonitoringLevel::None),
            ),
        );
        let err = run_fleet_controlled(&spec, config, FleetControl::default())
            .expect_err("book mismatch must reject");
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn mid_run_fault_fire_cannot_replay_stale_battery_keep_fraction() {
        use crate::fault::{FaultSchedule, IntermittentStorage};
        use mseh_storage::BatteryLanes;

        // Sim level: a battery-store node whose cell fails open mid-run
        // and recovers. The battery's memoized idle keep fraction is
        // exercised on both sides of the FaultFire/FaultClear edges —
        // the books must close and the fault must actually bite.
        let horizon = Seconds::from_hours(6.0);
        let build = |faulted: bool| {
            let mut spec = FleetSpec::new();
            let site = spec.add_site(Environment::indoor_office(7));
            spec.add_group(FleetGroup::new(
                "battery node",
                1,
                site,
                SensorNode::milliwatt_class(),
                move |_| {
                    let mut nimh = Battery::nimh_aa_pair();
                    nimh.set_soc(0.8);
                    let store: Box<dyn Storage> = if faulted {
                        Box::new(IntermittentStorage::new(
                            Box::new(nimh),
                            FaultSchedule::one_shot_recovering(
                                Seconds::from_hours(2.0),
                                Seconds::from_hours(1.0),
                            ),
                        ))
                    } else {
                        Box::new(nimh)
                    };
                    Box::new(
                        PowerUnit::builder("battery node")
                            .harvester_port(
                                PortRequirement::any_in_window("PV", Volts::ZERO, Volts::new(7.0)),
                                Some(solar_channel()),
                                true,
                            )
                            .store_port(
                                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                                Some(store),
                                StoreRole::PrimaryBuffer,
                                true,
                            )
                            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
                            .build(),
                    )
                },
                |_| Box::new(FixedDuty::new(DutyCycle::saturating(0.5))),
            ));
            run_fleet(&spec, FleetConfig::over(horizon)).summary
        };
        let faulted = build(true);
        let healthy = build(false);
        assert!(faulted.audit_relative < 1e-6, "{}", faulted.audit_relative);
        assert!(healthy.audit_relative < 1e-6, "{}", healthy.audit_relative);
        assert_ne!(faulted.delivered, healthy.delivered, "fault must bite");

        // Lane level: the FaultFire edge contract for the lane-shared
        // keep memo — an edge that degrades the cell's self-discharge
        // must never replay the pre-fault keep fraction. The embedding
        // flushes at the edge (`invalidate_idle_memo`) and the re-key on
        // the new rate covers the rest.
        let mut template = Battery::nimh_aa_pair();
        template.set_soc(0.8);
        let n = 3;
        let mut lanes = BatteryLanes::from_template(&template, n);
        let zeros = vec![0.0; n];
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let dt = 60.0;
        lanes.step(&zeros, &zeros, dt, &mut a, &mut b); // warm the memo
        let degraded = 0.45;
        lanes.invalidate_idle_memo(); // the FaultFire edge flush
        lanes.set_self_discharge_month(degraded);
        lanes.step(&zeros, &zeros, dt, &mut a, &mut b);
        let mut reference = template.clone();
        reference.idle(Seconds::new(dt));
        reference.set_self_discharge_month(degraded);
        reference.idle(Seconds::new(dt));
        for i in 0..n {
            assert_eq!(
                lanes.stored_energy(i).to_bits(),
                reference.stored_energy().value().to_bits(),
                "lane {i} replayed a stale keep fraction"
            );
        }
    }

    #[test]
    fn controlled_run_matches_plain_run_and_honours_the_token() {
        let spec = small_spec(5, EnvJitter::relative(0.2));
        let config = FleetConfig::over(Seconds::from_hours(2.0));
        let plain = run_fleet(&spec, config).summary;
        let token = CancelToken::new();
        let controlled = run_fleet_controlled(
            &spec,
            config,
            FleetControl {
                cancel: Some(&token),
                progress: None,
            },
        )
        .expect("valid spec")
        .expect("token never tripped");
        assert_eq!(controlled.summary, plain);

        token.cancel();
        let cancelled = run_fleet_controlled(
            &spec,
            config,
            FleetControl {
                cancel: Some(&token),
                progress: None,
            },
        )
        .expect("valid spec");
        assert!(cancelled.is_none(), "tripped token must yield Ok(None)");
    }

    #[test]
    fn controlled_run_reports_errors_instead_of_panicking() {
        let empty = FleetSpec::new();
        let config = FleetConfig::over(Seconds::from_hours(1.0));
        let err =
            run_fleet_controlled(&empty, config, FleetControl::default()).expect_err("empty fleet");
        assert!(err.contains("population must be non-empty"), "{err}");

        let spec = small_spec(1, EnvJitter::NONE);
        let bad_duration = FleetConfig::over(Seconds::new(-5.0));
        let err = run_fleet_controlled(&spec, bad_duration, FleetControl::default())
            .expect_err("negative duration");
        assert!(err.contains("duration"), "{err}");

        let mut bad_dt = FleetConfig::over(Seconds::from_hours(1.0));
        bad_dt.sim.dt = Seconds::new(0.0);
        let err =
            run_fleet_controlled(&spec, bad_dt, FleetControl::default()).expect_err("zero dt");
        assert!(err.contains("dt must be positive"), "{err}");
    }

    #[test]
    fn cancelling_a_dense_fleet_mid_run_yields_none() {
        let mut spec = FleetSpec::new();
        let site = spec.add_site(Environment::outdoor_temperate(11));
        spec.add_dense_group(solar_dense(
            "pv dense",
            16,
            site,
            SensorNode::submilliwatt_class(),
        ));
        let token = CancelToken::new();
        let hits = std::sync::atomic::AtomicU64::new(0);
        // Trip the token from the progress hook after the first shard —
        // remaining shards must bail and the run must report Ok(None).
        let trip = |_done: u64, _total: u64| {
            hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            token.cancel();
        };
        let out = run_fleet_controlled(
            &spec,
            FleetConfig {
                threads: 2,
                shard_size: 4,
                ..FleetConfig::over(Seconds::from_hours(2.0))
            },
            FleetControl {
                cancel: Some(&token),
                progress: Some(&trip),
            },
        )
        .expect("valid spec");
        assert!(out.is_none(), "cancelled fleet must yield Ok(None)");
        assert!(hits.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }
}
