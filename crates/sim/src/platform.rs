//! The [`Platform`] abstraction: anything the simulation kernel can drive.

use mseh_core::{PowerUnit, SmartNetwork, StepReport};
use mseh_env::EnvConditions;
use mseh_harvesters::CacheStats;
use mseh_node::EnergyStatus;
use mseh_units::{Joules, Seconds, Watts};

/// A complete energy platform the kernel can step: the conventional
/// [`PowerUnit`] and the future-work [`SmartNetwork`] both qualify, so
/// every experiment can run against either architecture unchanged.
pub trait Platform {
    /// The platform's name.
    fn name(&self) -> &str;

    /// Advances one interval, serving `load` at the output rail.
    fn step(&mut self, env: &EnvConditions, dt: Seconds, load: Watts) -> StepReport;

    /// The energy status visible to the node (clamped to the platform's
    /// monitoring capability).
    fn energy_status(&self) -> EnergyStatus;

    /// Actual stored energy across all storage devices.
    fn total_stored_energy(&self) -> Joules;

    /// Total internal storage dissipation (for the conservation audit).
    fn storage_losses(&self) -> Joules;

    /// Total actual storage capacity; a drop between control windows is
    /// reported to observers as a fault firing.
    fn storage_capacity(&self) -> Joules;

    /// Cumulative `(fired, cleared)` fault counts across the platform's
    /// devices (storage, harvesters, converters).
    ///
    /// The runner polls this at control-window edges so injected faults
    /// that fire *and* clear within one window — invisible to the
    /// capacity-drop check — still produce their `FaultFire` /
    /// `FaultClear` event pair. Platforms without fault-injection
    /// wrappers report `(0, 0)`.
    fn fault_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Energy currently stranded by active faults (stored content that
    /// physically exists but cannot be delivered). Zero when no fault
    /// wrapper is active.
    fn stranded_energy(&self) -> Joules {
        Joules::ZERO
    }

    /// Aggregated operating-point kernel-cache counters (channel step
    /// memos plus harvester solve caches). Platforms without caches
    /// report all-zero stats.
    fn kernel_cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Enables or disables the platform's operating-point kernel caches.
    /// Disabling drops stored entries so every step solves from scratch
    /// (the uncached reference path). Default: no-op.
    fn set_kernel_cache_enabled(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Selects the kernel cache's key tier: `None` is the exact tier,
    /// `Some(m)` the opt-in quantized tier truncating `m` low mantissa
    /// bits of each ambient field before keying and solving (ULP-bounded
    /// input perturbation below `2^(m−52)` relative, per field).
    /// Default: no-op for platforms without caches.
    fn set_kernel_cache_quantization(&mut self, drop_bits: Option<u32>) {
        let _ = drop_bits;
    }

    /// Whether this platform's shape matches the fleet engine's
    /// monomorphized dense-lane class (one channel-backed harvester
    /// port, one primary-buffer store, no shared-port fabric), so a
    /// boxed [`crate::FleetGroup`] may opt its members into the batched
    /// struct-of-arrays kernels via [`crate::FleetGroup::with_dense_class`].
    /// Default: `false` — only shapes the lane kernels provably
    /// replicate may opt in.
    fn supports_dense_kernels(&self) -> bool {
        false
    }
}

impl Platform for PowerUnit {
    fn name(&self) -> &str {
        PowerUnit::name(self)
    }

    fn step(&mut self, env: &EnvConditions, dt: Seconds, load: Watts) -> StepReport {
        PowerUnit::step(self, env, dt, load)
    }

    fn energy_status(&self) -> EnergyStatus {
        PowerUnit::energy_status(self)
    }

    fn total_stored_energy(&self) -> Joules {
        PowerUnit::total_stored_energy(self)
    }

    fn storage_losses(&self) -> Joules {
        PowerUnit::storage_losses(self)
    }

    fn storage_capacity(&self) -> Joules {
        PowerUnit::storage_capacity(self)
    }

    fn fault_counts(&self) -> (u64, u64) {
        PowerUnit::fault_counts(self)
    }

    fn stranded_energy(&self) -> Joules {
        PowerUnit::stranded_energy(self)
    }

    fn kernel_cache_stats(&self) -> CacheStats {
        PowerUnit::kernel_cache_stats(self)
    }

    fn set_kernel_cache_enabled(&mut self, enabled: bool) {
        PowerUnit::set_kernel_cache_enabled(self, enabled)
    }

    fn set_kernel_cache_quantization(&mut self, drop_bits: Option<u32>) {
        PowerUnit::set_kernel_cache_quantization(self, drop_bits)
    }

    fn supports_dense_kernels(&self) -> bool {
        PowerUnit::supports_dense_kernels(self)
    }
}

impl Platform for SmartNetwork {
    fn name(&self) -> &str {
        "smart harvester network"
    }

    fn step(&mut self, env: &EnvConditions, dt: Seconds, load: Watts) -> StepReport {
        SmartNetwork::step(self, env, dt, load)
    }

    fn energy_status(&self) -> EnergyStatus {
        SmartNetwork::energy_status(self)
    }

    fn total_stored_energy(&self) -> Joules {
        SmartNetwork::stored_energy(self)
    }

    fn storage_losses(&self) -> Joules {
        SmartNetwork::storage_losses(self)
    }

    fn storage_capacity(&self) -> Joules {
        SmartNetwork::storage_capacity(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_core::{PortRequirement, StoreRole};
    use mseh_power::DcDcConverter;
    use mseh_storage::Supercap;
    use mseh_units::Volts;

    fn unit() -> PowerUnit {
        PowerUnit::builder("trait test")
            .store_port(
                PortRequirement::any_in_window("b", Volts::ZERO, Volts::new(3.0)),
                Some(Box::new(Supercap::edlc_22f())),
                StoreRole::PrimaryBuffer,
                true,
            )
            .output_stage(Box::new(DcDcConverter::buck_boost_3v3()))
            .build()
    }

    #[test]
    fn power_unit_is_a_platform() {
        let mut p: Box<dyn Platform> = Box::new(unit());
        assert_eq!(p.name(), "trait test");
        let env = EnvConditions::quiescent(Seconds::ZERO);
        let r = p.step(&env, Seconds::new(1.0), Watts::ZERO);
        assert_eq!(r.harvested, Joules::ZERO);
        assert_eq!(p.total_stored_energy(), Joules::ZERO);
    }

    #[test]
    fn smart_network_is_a_platform() {
        let net = SmartNetwork::new(Box::new(DcDcConverter::buck_boost_3v3()));
        let p: Box<dyn Platform> = Box::new(net);
        assert_eq!(p.name(), "smart harvester network");
    }
}
