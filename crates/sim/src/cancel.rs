//! Cooperative cancellation for long-running simulation work.
//!
//! A [`CancelToken`] is a cheap shared flag threaded through the
//! kernel's window loops: the single-run kernel, the resilience
//! campaign's segment loop, and every fleet lane check it at
//! control-window granularity, so a cancelled run stops within one
//! control window of compute per in-flight node and never mid-window
//! (results are either complete or discarded, never torn).
//!
//! Tokens exist for the daemon ([`crate::serve`]) — a submitted job
//! holds one and `cancel` trips it — but they are plain library
//! objects: any embedding (a UI thread, a watchdog) can use them.
//!
//! # Examples
//!
//! ```
//! use mseh_sim::CancelToken;
//!
//! let token = CancelToken::new();
//! assert!(!token.is_cancelled());
//! token.cancel();
//! assert!(token.is_cancelled());
//! // Clones observe the same flag.
//! let clone = token.clone();
//! assert!(clone.is_cancelled());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag. Cancellation is one-way:
/// once tripped, a token never resets.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// `true` when `cancel` is present and tripped — the single branch the
/// kernels pay per control window.
#[inline]
pub(crate) fn tripped(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(CancelToken::is_cancelled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert!(!tripped(Some(&t)));
        assert!(!tripped(None));
        t.cancel();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(tripped(Some(&t)));
    }

    #[test]
    fn clones_share_the_flag_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }
}
