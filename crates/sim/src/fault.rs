//! Failure injection: wrappers that make energy devices fail or degrade
//! on schedule, for resilience experiments.
//!
//! Deployed harvesting hardware fails: cells wear out and go open
//! circuit, panels soil and lose output. The survey's multi-*source*
//! redundancy argument extends naturally to multi-*device* resilience,
//! and these wrappers let any platform be tested against it without
//! touching the device models.

use mseh_env::EnvConditions;
use mseh_harvesters::{HarvesterKind, Transducer};
use mseh_storage::{Storage, StorageKind};
use mseh_units::{Amps, Joules, Seconds, Volts, Watts};

/// A storage device that fails open at a scheduled point in its service
/// life: after `fails_after` of accumulated operating time it stops
/// accepting and delivering energy (its content is stranded).
///
/// Time accrues through [`charge`](Storage::charge),
/// [`discharge`](Storage::discharge) and [`idle`](Storage::idle) calls,
/// so wall-clock in the simulation is what ages it.
///
/// # Examples
///
/// ```
/// use mseh_sim::FailingStorage;
/// use mseh_storage::{Supercap, Storage};
/// use mseh_units::{Seconds, Volts, Watts};
///
/// let mut cap = Supercap::edlc_22f();
/// cap.set_voltage(Volts::new(2.5));
/// let mut device = FailingStorage::new(Box::new(cap), Seconds::from_hours(1.0));
/// assert!(!device.has_failed());
/// device.idle(Seconds::from_hours(2.0));
/// assert!(device.has_failed());
/// assert_eq!(device.discharge(Watts::new(1.0), Seconds::new(10.0)).value(), 0.0);
/// ```
pub struct FailingStorage {
    inner: Box<dyn Storage>,
    name: String,
    fails_after: Seconds,
    age: Seconds,
}

impl FailingStorage {
    /// Wraps `inner` with a scheduled open-circuit failure.
    ///
    /// # Panics
    ///
    /// Panics if `fails_after` is not positive.
    pub fn new(inner: Box<dyn Storage>, fails_after: Seconds) -> Self {
        assert!(fails_after.value() > 0.0, "failure time must be positive");
        let name = format!("{} (fails at {fails_after})", inner.name());
        Self {
            inner,
            name,
            fails_after,
            age: Seconds::ZERO,
        }
    }

    /// Whether the device has failed.
    pub fn has_failed(&self) -> bool {
        self.age >= self.fails_after
    }

    fn advance(&mut self, dt: Seconds) {
        self.age += dt;
    }
}

impl Storage for FailingStorage {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> StorageKind {
        self.inner.kind()
    }

    fn voltage(&self) -> Volts {
        if self.has_failed() {
            Volts::ZERO
        } else {
            self.inner.voltage()
        }
    }

    fn stored_energy(&self) -> Joules {
        // Stranded energy still physically exists; report zero *usable*
        // energy so SoC-driven policies see the loss.
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.stored_energy()
        }
    }

    fn capacity(&self) -> Joules {
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.capacity()
        }
    }

    fn min_voltage(&self) -> Volts {
        self.inner.min_voltage()
    }

    fn max_voltage(&self) -> Volts {
        self.inner.max_voltage()
    }

    fn max_charge_power(&self) -> Watts {
        if self.has_failed() {
            Watts::ZERO
        } else {
            self.inner.max_charge_power()
        }
    }

    fn max_discharge_power(&self) -> Watts {
        if self.has_failed() {
            Watts::ZERO
        } else {
            self.inner.max_discharge_power()
        }
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.charge(power, dt)
        }
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.discharge(power, dt)
        }
    }

    fn idle(&mut self, dt: Seconds) {
        self.advance(dt);
        if !self.has_failed() {
            self.inner.idle(dt);
        }
    }

    fn losses(&self) -> Joules {
        // On failure the stranded content becomes a permanent loss; fold
        // it into the ledger so the conservation audit still closes.
        if self.has_failed() {
            self.inner.losses() + self.inner.stored_energy()
        } else {
            self.inner.losses()
        }
    }
}

/// A harvester whose output derates linearly over its service life —
/// panel soiling, bearing wear, electrode fatigue.
///
/// Derating is driven by the *simulation timestamp* in the sampled
/// conditions (transducers are stateless), falling from 100 % at `t = 0`
/// to `floor` at `lifetime` and holding there.
pub struct DegradingHarvester {
    inner: Box<dyn Transducer>,
    name: String,
    lifetime: Seconds,
    floor: f64,
}

impl DegradingHarvester {
    /// Wraps `inner` with linear derating to `floor` (a fraction of
    /// nominal output) over `lifetime`.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is not positive or `floor` is outside
    /// `[0, 1]`.
    pub fn new(inner: Box<dyn Transducer>, lifetime: Seconds, floor: f64) -> Self {
        assert!(lifetime.value() > 0.0, "lifetime must be positive");
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
        let name = format!("{} (degrading)", inner.name());
        Self {
            inner,
            name,
            lifetime,
            floor,
        }
    }

    /// The output factor at time `t`.
    pub fn derating(&self, t: Seconds) -> f64 {
        let progress = (t.value() / self.lifetime.value()).clamp(0.0, 1.0);
        1.0 - (1.0 - self.floor) * progress
    }
}

impl Transducer for DegradingHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        self.inner.kind()
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        self.inner.current_at(v, env) * self.derating(env.time)
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        self.inner.open_circuit_voltage(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_harvesters::PvModule;
    use mseh_storage::Supercap;
    use mseh_units::WattsPerSqM;

    fn charged_cap() -> Box<dyn Storage> {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(2.5));
        Box::new(cap)
    }

    #[test]
    fn storage_works_until_the_scheduled_failure() {
        let mut dev = FailingStorage::new(charged_cap(), Seconds::from_hours(1.0));
        let got = dev.discharge(Watts::from_milli(100.0), Seconds::new(60.0));
        assert!(got.value() > 0.0);
        assert!(!dev.has_failed());
        dev.idle(Seconds::from_hours(1.0));
        assert!(dev.has_failed());
        assert_eq!(
            dev.charge(Watts::new(1.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert_eq!(dev.voltage(), Volts::ZERO);
        assert_eq!(dev.capacity(), Joules::ZERO);
        assert!(dev.is_depleted());
    }

    #[test]
    fn stranded_energy_lands_in_losses() {
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(10.0));
        let stored_before = dev.stored_energy();
        assert!(stored_before.value() > 0.0);
        let losses_before = dev.losses();
        dev.idle(Seconds::new(20.0));
        // The content is stranded: reported stored goes to zero and the
        // ledger absorbs it, keeping conservation closed.
        assert_eq!(dev.stored_energy(), Joules::ZERO);
        assert!(dev.losses() >= losses_before + stored_before * 0.9);
    }

    #[test]
    fn degrading_harvester_fades_to_floor() {
        let pv = DegradingHarvester::new(
            Box::new(PvModule::outdoor_panel_half_watt()),
            Seconds::from_days(100.0),
            0.4,
        );
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.irradiance = WattsPerSqM::new(800.0);
        let fresh = pv.mpp(&env).power();
        env.time = Seconds::from_days(50.0);
        let mid = pv.mpp(&env).power();
        env.time = Seconds::from_days(500.0);
        let old = pv.mpp(&env).power();
        assert!(mid < fresh);
        assert!(old < mid);
        // Holds at the floor: ~40 % of fresh.
        assert!((old.value() / fresh.value() - 0.4).abs() < 0.05);
        assert_eq!(pv.derating(Seconds::ZERO), 1.0);
    }

    #[test]
    fn age_accrues_across_mixed_operations() {
        // Service life is wall-clock through *any* operation: charge,
        // discharge and idle all age the device by their dt.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(100.0));
        assert!(
            dev.charge(Watts::from_milli(10.0), Seconds::new(30.0))
                .value()
                > 0.0
        );
        assert!(
            dev.discharge(Watts::from_milli(10.0), Seconds::new(30.0))
                .value()
                > 0.0
        );
        dev.idle(Seconds::new(30.0));
        // 30 + 30 + 30 = 90 s of the 100 s life: still healthy and
        // still serving energy.
        assert!(!dev.has_failed());
        assert!(dev.voltage().value() > 0.0);
        assert!(dev.capacity().value() > 0.0);

        // The next 10 s discharge crosses the line mid-operation.
        let last = dev.discharge(Watts::from_milli(10.0), Seconds::new(10.0));
        assert!(dev.has_failed());
        assert_eq!(last, Joules::ZERO);
        assert_eq!(dev.voltage(), Volts::ZERO);
    }

    #[test]
    fn operation_landing_exactly_on_the_boundary_is_dead() {
        // Aging happens before the failure check, so the operation whose
        // dt lands age exactly on `fails_after` already sees a failed
        // device: the step *containing* the failure delivers nothing,
        // rather than one full step of post-mortem service.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        assert_eq!(
            dev.charge(Watts::from_milli(10.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert!(dev.has_failed());

        // Same boundary via discharge.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        assert_eq!(
            dev.discharge(Watts::from_milli(10.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert!(dev.has_failed());

        // One femtosecond short of the boundary still works.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        let got = dev.discharge(Watts::from_milli(10.0), Seconds::new(60.0 - 1e-9));
        assert!(!dev.has_failed());
        assert!(got.value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "failure time")]
    fn rejects_zero_failure_time() {
        FailingStorage::new(charged_cap(), Seconds::ZERO);
    }
}
