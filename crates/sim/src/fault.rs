//! Failure injection: wrappers that make energy devices fail or degrade
//! on schedule, for resilience experiments.
//!
//! Deployed harvesting hardware fails: cells wear out and go open
//! circuit, panels soil and lose output, contacts corrode and come back
//! after a thermal cycle. The survey's multi-*source* redundancy
//! argument extends naturally to multi-*device* resilience, and these
//! wrappers let any platform be tested against it without touching the
//! device models.
//!
//! The timeline of a fault campaign is a [`FaultSchedule`]: a sorted
//! list of `(fire, clear)` windows built deterministically (one-shot,
//! periodic, or seeded-stochastic — the stochastic variant precomputes
//! its draws at construction so runs stay bit-identical). The schedule
//! drives [`IntermittentStorage`] (fails open, then recovers),
//! [`GlitchingHarvester`] (output dropouts) and — in `mseh_power`,
//! which cannot see this crate — the converter brownout wrapper, via
//! [`FaultSchedule::windows`].

use mseh_env::rng::{Noise, StreamId};
use mseh_env::EnvConditions;
use mseh_harvesters::{HarvesterKind, Transducer};
use mseh_storage::{Storage, StorageKind};
use mseh_units::{Amps, Joules, Seconds, Volts, Watts};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The noise stream used for stochastic fault timelines (disjoint from
/// the environment's streams, so fault draws never perturb weather).
const FAULT_STREAM: StreamId = StreamId(64);

/// A deterministic fault timeline: sorted, non-overlapping
/// `(fire, clear)` windows during which the wrapped device is down.
///
/// Time is whatever clock the consuming wrapper runs on —
/// [`IntermittentStorage`] accumulates *operating time* from its
/// `charge`/`discharge`/`idle` calls (so a schedule is relative to the
/// run that ages it), while [`GlitchingHarvester`] reads the *absolute
/// simulation timestamp* from the sampled conditions (transducers are
/// stateless). A permanent fault has an infinite clear time.
///
/// # Examples
///
/// ```
/// use mseh_sim::FaultSchedule;
/// use mseh_units::Seconds;
///
/// let s = FaultSchedule::periodic(
///     Seconds::from_hours(6.0),  // first fault
///     Seconds::from_hours(12.0), // repeat period
///     Seconds::from_hours(1.0),  // down-time per fault
///     Seconds::from_days(1.0),   // horizon
/// );
/// assert_eq!(s.windows().len(), 2);
/// assert!(s.is_down(Seconds::from_hours(6.5)));
/// assert!(!s.is_down(Seconds::from_hours(8.0)));
/// assert_eq!(s.fired_by(Seconds::from_days(1.0)), 2);
/// assert_eq!(s.cleared_by(Seconds::from_days(1.0)), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<(Seconds, Seconds)>,
}

impl FaultSchedule {
    /// A schedule with no faults.
    pub fn none() -> Self {
        Self {
            windows: Vec::new(),
        }
    }

    /// One permanent fault at `at` (never clears).
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative.
    pub fn one_shot(at: Seconds) -> Self {
        Self::from_windows(vec![(at, Seconds::new(f64::INFINITY))])
    }

    /// One fault at `at` that clears after `down_for`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative or `down_for` is not positive.
    pub fn one_shot_recovering(at: Seconds, down_for: Seconds) -> Self {
        assert!(down_for.value() > 0.0, "down time must be positive");
        Self::from_windows(vec![(at, at + down_for)])
    }

    /// Intermittent faults at `first`, `first + period`, … within
    /// `horizon`, each lasting `down_for`.
    ///
    /// # Panics
    ///
    /// Panics if `first` is negative, `down_for` is not positive, or
    /// `period ≤ down_for` (windows would overlap).
    pub fn periodic(first: Seconds, period: Seconds, down_for: Seconds, horizon: Seconds) -> Self {
        assert!(down_for.value() > 0.0, "down time must be positive");
        assert!(period > down_for, "period must exceed down time");
        let mut windows = Vec::new();
        let mut k = 0u32;
        loop {
            let fire = first + Seconds::new(k as f64 * period.value());
            if fire >= horizon {
                break;
            }
            windows.push((fire, fire + down_for));
            k += 1;
        }
        Self::from_windows(windows)
    }

    /// A seeded-stochastic timeline over `horizon`: exponentially
    /// distributed up-times (mean `mean_up`) alternating with
    /// exponentially distributed down-times (mean `mean_down`).
    ///
    /// All draws happen here, at construction, from a counter-based
    /// generator — the schedule is a pure function of its arguments, so
    /// campaigns stay bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not positive.
    pub fn stochastic(seed: u64, mean_up: Seconds, mean_down: Seconds, horizon: Seconds) -> Self {
        assert!(mean_up.value() > 0.0, "mean up-time must be positive");
        assert!(mean_down.value() > 0.0, "mean down-time must be positive");
        let noise = Noise::new(seed);
        let mut exp = {
            let mut counter = 0u64;
            move |mean: f64| {
                let u = noise.uniform(FAULT_STREAM, counter);
                counter += 1;
                -mean * (1.0 - u).ln()
            }
        };
        let mut windows = Vec::new();
        let mut t = exp(mean_up.value());
        while t < horizon.value() {
            let down = exp(mean_down.value()).max(1e-3);
            windows.push((Seconds::new(t), Seconds::new(t + down)));
            t += down + exp(mean_up.value()).max(1e-3);
        }
        Self::from_windows(windows)
    }

    /// Builds a schedule from explicit windows.
    ///
    /// # Panics
    ///
    /// Panics if any window is malformed (negative fire time,
    /// `clear ≤ fire`) or the windows are unsorted / overlapping.
    pub fn from_windows(windows: Vec<(Seconds, Seconds)>) -> Self {
        let mut prev_clear = Seconds::new(f64::NEG_INFINITY);
        for &(fire, clear) in &windows {
            assert!(fire.value() >= 0.0, "fault time must be non-negative");
            assert!(clear > fire, "clear time must follow fire time");
            assert!(
                fire >= prev_clear,
                "fault windows must be sorted and non-overlapping"
            );
            prev_clear = clear;
        }
        Self { windows }
    }

    /// Whether the device is down at `t` (the fire instant is down; the
    /// clear instant is back up, matching the wrappers' age-then-check
    /// convention).
    pub fn is_down(&self, t: Seconds) -> bool {
        self.windows
            .iter()
            .any(|&(fire, clear)| t >= fire && t < clear)
    }

    /// Faults fired at or before `t`.
    pub fn fired_by(&self, t: Seconds) -> u64 {
        self.windows
            .iter()
            .take_while(|&&(fire, _)| fire <= t)
            .count() as u64
    }

    /// Faults cleared at or before `t`.
    pub fn cleared_by(&self, t: Seconds) -> u64 {
        self.windows
            .iter()
            .filter(|&&(_, clear)| clear <= t)
            .count() as u64
    }

    /// The first fault's fire time, if the schedule has any.
    pub fn first_fault(&self) -> Option<Seconds> {
        self.windows.first().map(|&(fire, _)| fire)
    }

    /// The raw `(fire, clear)` windows, sorted by fire time.
    pub fn windows(&self) -> &[(Seconds, Seconds)] {
        &self.windows
    }

    /// Whether the schedule contains no faults.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// A storage device that fails open at a scheduled point in its service
/// life: after `fails_after` of accumulated operating time it stops
/// accepting and delivering energy (its content is stranded).
///
/// Time accrues through [`charge`](Storage::charge),
/// [`discharge`](Storage::discharge) and [`idle`](Storage::idle) calls,
/// so wall-clock in the simulation is what ages it.
///
/// # Examples
///
/// ```
/// use mseh_sim::FailingStorage;
/// use mseh_storage::{Supercap, Storage};
/// use mseh_units::{Seconds, Volts, Watts};
///
/// let mut cap = Supercap::edlc_22f();
/// cap.set_voltage(Volts::new(2.5));
/// let mut device = FailingStorage::new(Box::new(cap), Seconds::from_hours(1.0));
/// assert!(!device.has_failed());
/// device.idle(Seconds::from_hours(2.0));
/// assert!(device.has_failed());
/// assert_eq!(device.discharge(Watts::new(1.0), Seconds::new(10.0)).value(), 0.0);
/// ```
pub struct FailingStorage {
    inner: Box<dyn Storage>,
    name: String,
    fails_after: Seconds,
    age: Seconds,
}

impl FailingStorage {
    /// Wraps `inner` with a scheduled open-circuit failure.
    ///
    /// # Panics
    ///
    /// Panics if `fails_after` is not positive.
    pub fn new(inner: Box<dyn Storage>, fails_after: Seconds) -> Self {
        assert!(fails_after.value() > 0.0, "failure time must be positive");
        let name = format!("{} (fails at {fails_after})", inner.name());
        Self {
            inner,
            name,
            fails_after,
            age: Seconds::ZERO,
        }
    }

    /// Whether the device has failed.
    pub fn has_failed(&self) -> bool {
        self.age >= self.fails_after
    }

    fn advance(&mut self, dt: Seconds) {
        self.age += dt;
    }
}

impl Storage for FailingStorage {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> StorageKind {
        self.inner.kind()
    }

    fn voltage(&self) -> Volts {
        if self.has_failed() {
            Volts::ZERO
        } else {
            self.inner.voltage()
        }
    }

    fn stored_energy(&self) -> Joules {
        // Stranded energy still physically exists; report zero *usable*
        // energy so SoC-driven policies see the loss.
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.stored_energy()
        }
    }

    fn capacity(&self) -> Joules {
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.capacity()
        }
    }

    fn min_voltage(&self) -> Volts {
        self.inner.min_voltage()
    }

    fn max_voltage(&self) -> Volts {
        self.inner.max_voltage()
    }

    fn max_charge_power(&self) -> Watts {
        if self.has_failed() {
            Watts::ZERO
        } else {
            self.inner.max_charge_power()
        }
    }

    fn max_discharge_power(&self) -> Watts {
        if self.has_failed() {
            Watts::ZERO
        } else {
            self.inner.max_discharge_power()
        }
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.charge(power, dt)
        }
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.has_failed() {
            Joules::ZERO
        } else {
            self.inner.discharge(power, dt)
        }
    }

    fn idle(&mut self, dt: Seconds) {
        self.advance(dt);
        if !self.has_failed() {
            self.inner.idle(dt);
        }
    }

    fn losses(&self) -> Joules {
        // On failure the stranded content becomes a permanent loss; fold
        // it into the ledger so the conservation audit still closes.
        if self.has_failed() {
            self.inner.losses() + self.inner.stored_energy()
        } else {
            self.inner.losses()
        }
    }

    fn fault_fire_count(&self) -> u64 {
        u64::from(self.has_failed())
    }

    fn stranded_energy(&self) -> Joules {
        if self.has_failed() {
            self.inner.stored_energy()
        } else {
            Joules::ZERO
        }
    }
}

/// A storage device that fails open on a [`FaultSchedule`] and recovers
/// when each window clears: a corroded contact, a cell with an
/// intermittent internal open, a connector that thermal cycling
/// reseats.
///
/// The schedule runs on *operating time* accumulated through
/// [`charge`](Storage::charge), [`discharge`](Storage::discharge) and
/// [`idle`](Storage::idle), so a schedule built for a run measures time
/// from that run's start regardless of `SimConfig::start_at`.
///
/// While down the device reports zero voltage, stored energy and
/// capacity, and refuses all transfer; the stranded content is folded
/// into [`losses`](Storage::losses) so the conservation audit keeps
/// closing (when the fault clears the fold reverses — a legal negative
/// loss delta — and the surviving content is usable again). Leakage
/// continues throughout: the cell doesn't stop self-discharging just
/// because its terminal went open.
///
/// # Examples
///
/// ```
/// use mseh_sim::{FaultSchedule, IntermittentStorage};
/// use mseh_storage::{Storage, Supercap};
/// use mseh_units::{Seconds, Volts, Watts};
///
/// let mut cap = Supercap::edlc_22f();
/// cap.set_voltage(Volts::new(2.5));
/// let schedule = FaultSchedule::one_shot_recovering(
///     Seconds::new(100.0),
///     Seconds::new(50.0),
/// );
/// let mut dev = IntermittentStorage::new(Box::new(cap), schedule);
/// dev.idle(Seconds::new(100.0));
/// assert!(dev.is_down());
/// assert_eq!(dev.discharge(Watts::new(1.0), Seconds::new(10.0)).value(), 0.0);
/// dev.idle(Seconds::new(40.0));
/// assert!(!dev.is_down());
/// assert!(dev.stored_energy().value() > 0.0);
/// assert_eq!(dev.fault_fire_count(), 1);
/// assert_eq!(dev.fault_clear_count(), 1);
/// ```
pub struct IntermittentStorage {
    inner: Box<dyn Storage>,
    name: String,
    schedule: FaultSchedule,
    age: Seconds,
}

impl IntermittentStorage {
    /// Wraps `inner` with a scheduled fail-open / recover timeline.
    pub fn new(inner: Box<dyn Storage>, schedule: FaultSchedule) -> Self {
        let name = format!("{} (intermittent)", inner.name());
        Self {
            inner,
            name,
            schedule,
            age: Seconds::ZERO,
        }
    }

    /// Whether the device is currently inside a fault window.
    pub fn is_down(&self) -> bool {
        self.schedule.is_down(self.age)
    }

    /// Operating time accumulated so far.
    pub fn age(&self) -> Seconds {
        self.age
    }

    /// The injected fault timeline.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    fn advance(&mut self, dt: Seconds) {
        self.age += dt;
    }
}

impl Storage for IntermittentStorage {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> StorageKind {
        self.inner.kind()
    }

    fn voltage(&self) -> Volts {
        if self.is_down() {
            Volts::ZERO
        } else {
            self.inner.voltage()
        }
    }

    fn stored_energy(&self) -> Joules {
        if self.is_down() {
            Joules::ZERO
        } else {
            self.inner.stored_energy()
        }
    }

    fn capacity(&self) -> Joules {
        if self.is_down() {
            Joules::ZERO
        } else {
            self.inner.capacity()
        }
    }

    fn min_voltage(&self) -> Volts {
        self.inner.min_voltage()
    }

    fn max_voltage(&self) -> Volts {
        self.inner.max_voltage()
    }

    fn max_charge_power(&self) -> Watts {
        if self.is_down() {
            Watts::ZERO
        } else {
            self.inner.max_charge_power()
        }
    }

    fn max_discharge_power(&self) -> Watts {
        if self.is_down() {
            Watts::ZERO
        } else {
            self.inner.max_discharge_power()
        }
    }

    fn charge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.is_down() {
            self.inner.idle(dt);
            Joules::ZERO
        } else {
            self.inner.charge(power, dt)
        }
    }

    fn discharge(&mut self, power: Watts, dt: Seconds) -> Joules {
        self.advance(dt);
        if self.is_down() {
            self.inner.idle(dt);
            Joules::ZERO
        } else {
            self.inner.discharge(power, dt)
        }
    }

    fn idle(&mut self, dt: Seconds) {
        self.advance(dt);
        self.inner.idle(dt);
    }

    fn losses(&self) -> Joules {
        // While down the stranded content is carried in the loss ledger
        // (Δstored and Δlosses cancel at both edges of the window), so
        // the per-window conservation identity closes through the fault
        // and through the recovery.
        if self.is_down() {
            self.inner.losses() + self.inner.stored_energy()
        } else {
            self.inner.losses()
        }
    }

    fn fault_fire_count(&self) -> u64 {
        self.schedule.fired_by(self.age)
    }

    fn fault_clear_count(&self) -> u64 {
        self.schedule.cleared_by(self.age)
    }

    fn stranded_energy(&self) -> Joules {
        if self.is_down() {
            self.inner.stored_energy()
        } else {
            Joules::ZERO
        }
    }
}

/// A harvester whose output drops to zero during scheduled windows — a
/// shaded panel, an unplugged turbine, a vibration source whose machine
/// was switched off.
///
/// Transducers are stateless, so the schedule runs on the *absolute
/// simulation timestamp* carried in the sampled conditions (unlike
/// [`IntermittentStorage`], whose clock is run-relative operating
/// time). During a dropout both the I–V curve and the open-circuit
/// voltage collapse to zero, so MPPT controllers see a dead source and
/// the input channel goes to sleep.
pub struct GlitchingHarvester {
    inner: Box<dyn Transducer>,
    name: String,
    schedule: FaultSchedule,
    /// High-water mark of the timestamps seen, as `f64` bits — the
    /// fired/cleared counts must be readable through `&self`, and for
    /// non-negative floats the IEEE-754 bit pattern orders like the
    /// value, so `fetch_max` on bits tracks the latest time observed.
    seen_bits: AtomicU64,
    /// Down-state as of the last observation, for edge detection: each
    /// fire and each clear flushes the wrapped harvester's solve cache.
    last_down: AtomicBool,
}

impl GlitchingHarvester {
    /// Wraps `inner` with scheduled output dropouts.
    pub fn new(inner: Box<dyn Transducer>, schedule: FaultSchedule) -> Self {
        let name = format!("{} (glitching)", inner.name());
        Self {
            inner,
            name,
            schedule,
            seen_bits: AtomicU64::new(0),
            last_down: AtomicBool::new(false),
        }
    }

    /// The injected dropout timeline.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    fn observe(&self, t: Seconds) -> bool {
        let v = t.value();
        if v > 0.0 {
            self.seen_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
        let down = self.schedule.is_down(t);
        // On every fire and clear edge, flush the wrapped harvester's
        // operating-point cache: the wrapper changes what the same
        // ambient key produces, so no pre-edge solve may answer a
        // post-edge lookup. (Exact keys make stale answers impossible
        // anyway — the flush keeps the invalidation observable and the
        // contract explicit.)
        if self.last_down.swap(down, Ordering::Relaxed) != down {
            if let Some(cache) = self.inner.solve_cache() {
                cache.invalidate();
            }
        }
        down
    }

    fn seen(&self) -> Seconds {
        Seconds::new(f64::from_bits(self.seen_bits.load(Ordering::Relaxed)))
    }
}

impl Transducer for GlitchingHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        self.inner.kind()
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        if self.observe(env.time) {
            Amps::ZERO
        } else {
            self.inner.current_at(v, env)
        }
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        if self.observe(env.time) {
            Volts::ZERO
        } else {
            self.inner.open_circuit_voltage(env)
        }
    }

    fn fault_fire_count(&self) -> u64 {
        self.schedule.fired_by(self.seen())
    }

    fn fault_clear_count(&self) -> u64 {
        self.schedule.cleared_by(self.seen())
    }

    fn is_time_invariant(&self) -> bool {
        // Output depends on the absolute timestamp through the dropout
        // schedule; channel memos must never replay across this wrapper.
        false
    }
}

/// A harvester whose output derates linearly over its service life —
/// panel soiling, bearing wear, electrode fatigue.
///
/// Derating is driven by the *simulation timestamp* in the sampled
/// conditions (transducers are stateless), falling from 100 % at `t = 0`
/// to `floor` at `lifetime` and holding there.
pub struct DegradingHarvester {
    inner: Box<dyn Transducer>,
    name: String,
    lifetime: Seconds,
    floor: f64,
}

impl DegradingHarvester {
    /// Wraps `inner` with linear derating to `floor` (a fraction of
    /// nominal output) over `lifetime`.
    ///
    /// # Panics
    ///
    /// Panics if `lifetime` is not positive or `floor` is outside
    /// `[0, 1]`.
    pub fn new(inner: Box<dyn Transducer>, lifetime: Seconds, floor: f64) -> Self {
        assert!(lifetime.value() > 0.0, "lifetime must be positive");
        assert!((0.0..=1.0).contains(&floor), "floor must be in [0, 1]");
        let name = format!("{} (degrading)", inner.name());
        Self {
            inner,
            name,
            lifetime,
            floor,
        }
    }

    /// The output factor at time `t`.
    pub fn derating(&self, t: Seconds) -> f64 {
        let progress = (t.value() / self.lifetime.value()).clamp(0.0, 1.0);
        1.0 - (1.0 - self.floor) * progress
    }
}

impl Transducer for DegradingHarvester {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> HarvesterKind {
        self.inner.kind()
    }

    fn current_at(&self, v: Volts, env: &EnvConditions) -> Amps {
        self.inner.current_at(v, env) * self.derating(env.time)
    }

    fn open_circuit_voltage(&self, env: &EnvConditions) -> Volts {
        self.inner.open_circuit_voltage(env)
    }

    fn is_time_invariant(&self) -> bool {
        // Derating is a function of the absolute timestamp.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mseh_harvesters::PvModule;
    use mseh_storage::Supercap;
    use mseh_units::WattsPerSqM;

    fn charged_cap() -> Box<dyn Storage> {
        let mut cap = Supercap::edlc_22f();
        cap.set_voltage(Volts::new(2.5));
        Box::new(cap)
    }

    #[test]
    fn storage_works_until_the_scheduled_failure() {
        let mut dev = FailingStorage::new(charged_cap(), Seconds::from_hours(1.0));
        let got = dev.discharge(Watts::from_milli(100.0), Seconds::new(60.0));
        assert!(got.value() > 0.0);
        assert!(!dev.has_failed());
        dev.idle(Seconds::from_hours(1.0));
        assert!(dev.has_failed());
        assert_eq!(
            dev.charge(Watts::new(1.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert_eq!(dev.voltage(), Volts::ZERO);
        assert_eq!(dev.capacity(), Joules::ZERO);
        assert!(dev.is_depleted());
    }

    #[test]
    fn stranded_energy_lands_in_losses() {
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(10.0));
        let stored_before = dev.stored_energy();
        assert!(stored_before.value() > 0.0);
        let losses_before = dev.losses();
        dev.idle(Seconds::new(20.0));
        // The content is stranded: reported stored goes to zero and the
        // ledger absorbs it, keeping conservation closed.
        assert_eq!(dev.stored_energy(), Joules::ZERO);
        assert!(dev.losses() >= losses_before + stored_before * 0.9);
    }

    #[test]
    fn degrading_harvester_fades_to_floor() {
        let pv = DegradingHarvester::new(
            Box::new(PvModule::outdoor_panel_half_watt()),
            Seconds::from_days(100.0),
            0.4,
        );
        let mut env = EnvConditions::quiescent(Seconds::ZERO);
        env.irradiance = WattsPerSqM::new(800.0);
        let fresh = pv.mpp(&env).power();
        env.time = Seconds::from_days(50.0);
        let mid = pv.mpp(&env).power();
        env.time = Seconds::from_days(500.0);
        let old = pv.mpp(&env).power();
        assert!(mid < fresh);
        assert!(old < mid);
        // Holds at the floor: ~40 % of fresh.
        assert!((old.value() / fresh.value() - 0.4).abs() < 0.05);
        assert_eq!(pv.derating(Seconds::ZERO), 1.0);
    }

    #[test]
    fn age_accrues_across_mixed_operations() {
        // Service life is wall-clock through *any* operation: charge,
        // discharge and idle all age the device by their dt.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(100.0));
        assert!(
            dev.charge(Watts::from_milli(10.0), Seconds::new(30.0))
                .value()
                > 0.0
        );
        assert!(
            dev.discharge(Watts::from_milli(10.0), Seconds::new(30.0))
                .value()
                > 0.0
        );
        dev.idle(Seconds::new(30.0));
        // 30 + 30 + 30 = 90 s of the 100 s life: still healthy and
        // still serving energy.
        assert!(!dev.has_failed());
        assert!(dev.voltage().value() > 0.0);
        assert!(dev.capacity().value() > 0.0);

        // The next 10 s discharge crosses the line mid-operation.
        let last = dev.discharge(Watts::from_milli(10.0), Seconds::new(10.0));
        assert!(dev.has_failed());
        assert_eq!(last, Joules::ZERO);
        assert_eq!(dev.voltage(), Volts::ZERO);
    }

    #[test]
    fn operation_landing_exactly_on_the_boundary_is_dead() {
        // Aging happens before the failure check, so the operation whose
        // dt lands age exactly on `fails_after` already sees a failed
        // device: the step *containing* the failure delivers nothing,
        // rather than one full step of post-mortem service.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        assert_eq!(
            dev.charge(Watts::from_milli(10.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert!(dev.has_failed());

        // Same boundary via discharge.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        assert_eq!(
            dev.discharge(Watts::from_milli(10.0), Seconds::new(60.0)),
            Joules::ZERO
        );
        assert!(dev.has_failed());

        // One femtosecond short of the boundary still works.
        let mut dev = FailingStorage::new(charged_cap(), Seconds::new(60.0));
        let got = dev.discharge(Watts::from_milli(10.0), Seconds::new(60.0 - 1e-9));
        assert!(!dev.has_failed());
        assert!(got.value() > 0.0);
    }

    #[test]
    #[should_panic(expected = "failure time")]
    fn rejects_zero_failure_time() {
        FailingStorage::new(charged_cap(), Seconds::ZERO);
    }

    #[test]
    fn schedule_constructors_agree_on_edges() {
        let s = FaultSchedule::periodic(
            Seconds::new(10.0),
            Seconds::new(100.0),
            Seconds::new(5.0),
            Seconds::new(250.0),
        );
        assert_eq!(s.windows().len(), 3);
        // Fire instant is down, clear instant is back up.
        assert!(s.is_down(Seconds::new(10.0)));
        assert!(!s.is_down(Seconds::new(15.0)));
        assert_eq!(s.fired_by(Seconds::new(110.0)), 2);
        assert_eq!(s.cleared_by(Seconds::new(110.0)), 1);
        assert_eq!(s.first_fault(), Some(Seconds::new(10.0)));

        let permanent = FaultSchedule::one_shot(Seconds::new(7.0));
        assert!(permanent.is_down(Seconds::new(1e12)));
        assert_eq!(permanent.cleared_by(Seconds::new(1e12)), 0);

        assert!(FaultSchedule::none().is_empty());
        assert_eq!(FaultSchedule::none().first_fault(), None);
    }

    #[test]
    fn stochastic_schedule_is_a_pure_function_of_its_seed() {
        let horizon = Seconds::from_days(7.0);
        let up = Seconds::from_hours(4.0);
        let down = Seconds::from_minutes(30.0);
        let a = FaultSchedule::stochastic(42, up, down, horizon);
        let b = FaultSchedule::stochastic(42, up, down, horizon);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::stochastic(43, up, down, horizon));
        assert!(!a.is_empty(), "a week at 4 h mean up-time draws faults");
        // Every drawn window is well-formed and inside the horizon.
        for &(fire, clear) in a.windows() {
            assert!(fire.value() >= 0.0 && clear > fire);
            assert!(fire < horizon);
        }
    }

    #[test]
    #[should_panic(expected = "sorted and non-overlapping")]
    fn rejects_overlapping_windows() {
        FaultSchedule::from_windows(vec![
            (Seconds::new(0.0), Seconds::new(10.0)),
            (Seconds::new(5.0), Seconds::new(20.0)),
        ]);
    }

    #[test]
    fn intermittent_storage_conserves_through_fire_and_clear() {
        let schedule = FaultSchedule::one_shot_recovering(Seconds::new(60.0), Seconds::new(30.0));
        let mut dev = IntermittentStorage::new(charged_cap(), schedule);
        let book = |d: &IntermittentStorage| d.stored_energy() + d.losses();
        let before = book(&dev);

        // Healthy half-minute of discharge: books grow only by what left.
        let got = dev.discharge(Watts::from_milli(50.0), Seconds::new(30.0));
        assert!(got.value() > 0.0);
        let healthy = book(&dev);
        assert!((before.value() - got.value() - healthy.value()).abs() < 1e-9);

        // Into the fault window: refuses service, strands the content in
        // the loss ledger, books unchanged apart from ongoing leakage.
        assert_eq!(
            dev.charge(Watts::new(1.0), Seconds::new(40.0)),
            Joules::ZERO
        );
        assert!(dev.is_down());
        assert_eq!(dev.stored_energy(), Joules::ZERO);
        assert_eq!(dev.voltage(), Volts::ZERO);
        assert_eq!(dev.capacity(), Joules::ZERO);
        assert!(dev.stranded_energy().value() > 0.0);
        assert!((book(&dev).value() - healthy.value()).abs() < 1e-6);

        // Past the clear: content comes back, stranded returns to zero,
        // and the ledger delta reverses (legal negative Δlosses).
        dev.idle(Seconds::new(30.0));
        assert!(!dev.is_down());
        assert!(dev.stored_energy().value() > 0.0);
        assert_eq!(dev.stranded_energy(), Joules::ZERO);
        assert!((book(&dev).value() - healthy.value()).abs() < 1e-6);
        assert_eq!(dev.fault_fire_count(), 1);
        assert_eq!(dev.fault_clear_count(), 1);
    }

    #[test]
    fn glitching_harvester_drops_out_and_counts() {
        let schedule = FaultSchedule::one_shot_recovering(Seconds::new(100.0), Seconds::new(50.0));
        let pv = GlitchingHarvester::new(Box::new(PvModule::outdoor_panel_half_watt()), schedule);
        let mut env = EnvConditions::quiescent(Seconds::new(10.0));
        env.irradiance = WattsPerSqM::new(800.0);
        assert!(pv.mpp(&env).power().value() > 0.0);
        assert_eq!(pv.fault_fire_count(), 0);

        env.time = Seconds::new(120.0);
        assert_eq!(pv.mpp(&env).power(), Watts::ZERO);
        assert_eq!(pv.open_circuit_voltage(&env), Volts::ZERO);
        assert_eq!(pv.fault_fire_count(), 1);
        assert_eq!(pv.fault_clear_count(), 0);

        env.time = Seconds::new(160.0);
        assert!(pv.mpp(&env).power().value() > 0.0);
        assert_eq!(pv.fault_clear_count(), 1);
        assert!(pv.name().contains("glitching"));
    }
}
