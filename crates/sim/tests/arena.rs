//! Arena ↔ standalone-run equivalence over the survey's Table-I fleet.
//!
//! The arena's contract is that sampling the seeded environment once
//! per (scenario, seed) and replaying the trace across every policy
//! lane is indistinguishable — bit for bit, full-summary equality —
//! from each lane sampling its own `EnvSampler` inside an independent
//! `run_simulation`. This property must hold for every platform shape
//! the survey classifies, not just the dense single-channel one, so it
//! is checked here across all seven Table-I systems × 4 seeds.

use mseh_node::{FixedDuty, HillClimbDuty};
use mseh_sim::{
    run_arena, run_simulation, ArenaConfig, ArenaSpec, Contender, SimConfig, SimResult,
};
use mseh_systems::{resilience, SystemId};
use mseh_units::{DutyCycle, Seconds};

fn roster(id: SystemId) -> Vec<Contender> {
    vec![
        Contender::new("natural", move |_| resilience::natural_policy(id)),
        Contender::new("fixed-5%", |_| {
            Box::new(FixedDuty::new(DutyCycle::saturating(0.05)))
        }),
        Contender::new("hill-climb", |seed| Box::new(HillClimbDuty::new(seed))),
    ]
}

const SEEDS: [u64; 4] = [101, 202, 303, 404];

#[test]
fn shared_trace_matches_per_run_sampling_for_every_table_i_system() {
    let horizon = Seconds::from_hours(4.0);
    for id in SystemId::ALL {
        let spec = ArenaSpec::boxed(
            id.display_name(),
            resilience::natural_node(id),
            move |_| Box::new(id.build()),
            move |seed| resilience::natural_environment(id, seed),
        )
        .with_contenders(roster(id))
        .with_seeds(&SEEDS);

        let out = run_arena(&spec, ArenaConfig::over(horizon).keep_lane_results());
        let lanes = out.lane_results.expect("lane results kept");
        assert_eq!(lanes.len(), spec.lanes() as usize);

        // Every lane against a fresh, fully independent standalone run:
        // its own platform build, its own environment instance sampling
        // per step, its own policy instance.
        for (si, &seed) in SEEDS.iter().enumerate() {
            for (ci, contender) in spec.contenders().iter().enumerate() {
                let mut platform = id.build();
                let mut policy = match ci {
                    0 => resilience::natural_policy(id),
                    1 => Box::new(FixedDuty::new(DutyCycle::saturating(0.05))),
                    _ => Box::new(HillClimbDuty::new(seed)),
                };
                let reference: SimResult = run_simulation(
                    &mut platform,
                    &resilience::natural_environment(id, seed),
                    &resilience::natural_node(id),
                    policy.as_mut(),
                    SimConfig::over(horizon),
                );
                let lane = &lanes[si * spec.contenders().len() + ci];
                assert_eq!(
                    *lane,
                    reference,
                    "system {id} seed {seed} contender {}",
                    contender.name()
                );
            }
        }
    }
}
