//! Tier-equivalence properties of the dense lane's batched
//! struct-of-arrays solves.
//!
//! The contract under test: [`DenseSolveTier::Batched`] is bit-identical
//! to [`DenseSolveTier::Scalar`] — same harvest, same uptime
//! distribution, same audit, same stragglers — across harvester classes,
//! controllers, supercap parameter sets, jitter settings and run
//! geometry, because the batch kernels replicate the scalar iterate
//! sequence under a convergence mask rather than inventing a new
//! numerical scheme. The interpolated tier is checked against its
//! deviation bound instead.

use mseh_env::{EnvJitter, Environment};
use mseh_harvesters::{FlowTurbine, PvModule, Rectenna, Teg};
use mseh_node::{FixedDuty, MonitoringLevel, SensorNode, VoltageThreshold};
use mseh_power::{DcDcConverter, FixedPoint, FractionalVoc, IdealDiode, InputChannel};
use mseh_sim::{
    run_fleet, DenseGroup, DenseSolveTier, DenseStore, FleetConfig, FleetSpec, FleetSummary,
};
use mseh_storage::{Battery, Storage, Supercap};
use mseh_units::{DutyCycle, Seconds, Volts};

/// One dense platform preset per Table-I system: the seven surveyed
/// harvester-class / controller / buffer combinations, reduced to the
/// dense lane's one-channel/one-supercap shape.
const PRESETS: usize = 7;

fn channel_for(preset: usize) -> InputChannel {
    let (harvester, controller): (_, Box<dyn mseh_power::OperatingPointController>) = match preset {
        // A: Smart Power Unit — large PV behind fractional-Voc MPPT.
        0 => (
            Box::new(PvModule::outdoor_panel_two_watt()) as Box<dyn mseh_harvesters::Transducer>,
            Box::new(FractionalVoc::pv_standard()),
        ),
        // B: Plug-and-Play — small PV, quiescent-lean fixed point.
        1 => (
            Box::new(PvModule::outdoor_panel_half_watt()) as _,
            Box::new(FixedPoint::new(Volts::new(3.2))),
        ),
        // C: AmbiMax — wind column (fixed point: turbines expose no
        // batched Voc kernel, the gate must still accept them).
        2 => (
            Box::new(FlowTurbine::micro_wind()) as _,
            Box::new(FixedPoint::new(Volts::new(3.0))),
        ),
        // D: MPWiNode — half-watt PV with fractional-Voc.
        3 => (
            Box::new(PvModule::outdoor_panel_half_watt()) as _,
            Box::new(FractionalVoc::pv_standard()),
        ),
        // E: MAX17710 eval — TEG with a Thevenin-fraction tracker.
        4 => (
            Box::new(Teg::module_40mm()) as _,
            Box::new(FractionalVoc::thevenin_standard()),
        ),
        // F: EnerChip eval — indoor amorphous PV, fixed point.
        5 => (
            Box::new(PvModule::amorphous_indoor()) as _,
            Box::new(FixedPoint::new(Volts::new(2.4))),
        ),
        // G: EH-Link — RF rectenna column, fixed point.
        _ => (
            Box::new(Rectenna::rectenna_915mhz()) as _,
            Box::new(FixedPoint::new(Volts::new(1.8))),
        ),
    };
    InputChannel::new(
        harvester,
        controller,
        Box::new(IdealDiode::nanopower()),
        Box::new(DcDcConverter::mppt_front_end_5v()),
    )
}

fn cap_for(preset: usize) -> Supercap {
    let mut cap = match preset % 3 {
        0 => Supercap::edlc_22f(),
        1 => Supercap::lithium_ion_capacitor_40f(),
        _ => Supercap::edlc_1f(),
    };
    cap.set_voltage(Volts::new(
        cap.min_voltage().value() + 0.7 * (cap.max_voltage() - cap.min_voltage()).value(),
    ));
    cap
}

/// Battery analog of [`cap_for`]: the surveyed chemistries at partial
/// state of charge (the primary cell rides along to prove the lanes
/// honour the charge-refusal mask too).
fn batt_for(preset: usize) -> Battery {
    let mut batt = match preset % 4 {
        0 => Battery::lipo_400mah(),
        1 => Battery::nimh_aa_pair(),
        2 => Battery::thin_film_50uah(),
        _ => Battery::li_primary_aa(),
    };
    batt.set_soc(0.3 + 0.1 * (preset % 5) as f64);
    batt
}

fn site_for(preset: usize, seed: u64) -> Environment {
    match preset {
        // TEG and rectenna presets need a gradient / an RF field.
        4 | 6 => Environment::indoor_industrial(seed),
        5 => Environment::indoor_office(seed),
        _ => Environment::outdoor_temperate(seed),
    }
}

fn spec_for(preset: usize, seed: u64, jitter: EnvJitter, count: usize) -> FleetSpec {
    spec_with_store(
        preset,
        seed,
        jitter,
        count,
        DenseStore::Supercap(cap_for(preset)),
    )
}

fn battery_spec_for(preset: usize, seed: u64, jitter: EnvJitter, count: usize) -> FleetSpec {
    spec_with_store(
        preset,
        seed,
        jitter,
        count,
        DenseStore::Battery(batt_for(preset)),
    )
}

fn spec_with_store(
    preset: usize,
    seed: u64,
    jitter: EnvJitter,
    count: usize,
    store: DenseStore,
) -> FleetSpec {
    let mut spec = FleetSpec::new();
    let site = spec.add_site(site_for(preset, seed));
    let group = DenseGroup::new(
        "preset",
        count,
        site,
        SensorNode::submilliwatt_class(),
        move || channel_for(preset),
        DcDcConverter::buck_boost_3v3(),
        store,
        move |node_seed| {
            if preset.is_multiple_of(2) {
                Box::new(VoltageThreshold::supercap_ladder())
            } else {
                Box::new(FixedDuty::new(DutyCycle::saturating(
                    0.02 + 0.08 * (node_seed % 7) as f64 / 7.0,
                )))
            }
        },
    )
    .with_seed(seed ^ 0x5EED)
    .with_jitter(jitter)
    .with_monitoring(MonitoringLevel::Full);
    spec.add_dense_group(group);
    spec
}

/// A duration whose fractional closer lands mid-window (10 s closer
/// after 2 h of whole steps), shorter than the fractional-Voc sample
/// interval so the hold path of the batched closer is exercised too.
fn horizon() -> Seconds {
    Seconds::from_hours(2.0) + Seconds::new(10.0)
}

fn run_tier(spec: &FleetSpec, tier: DenseSolveTier) -> FleetSummary {
    run_fleet(spec, FleetConfig::over(horizon()).with_dense_tier(tier)).summary
}

/// Cache counters aside (the batched jittered path books synthesized
/// replay counts, the scalar path books the member channel's own), every
/// physical quantity must agree bit for bit.
fn modulo_cache(mut s: FleetSummary) -> FleetSummary {
    s.kernel_cache = Default::default();
    s
}

#[test]
fn batched_matches_scalar_bitwise_across_presets_unjittered() {
    for preset in 0..PRESETS {
        for seed in [11u64, 4242] {
            let spec = spec_for(preset, seed, EnvJitter::NONE, 9);
            let scalar = run_tier(&spec, DenseSolveTier::Scalar);
            let batched = run_tier(&spec, DenseSolveTier::Batched);
            // Un-jittered groups replay the shared table on both tiers,
            // so even the cache counters are identical: full equality.
            assert_eq!(batched, scalar, "preset {preset}, seed {seed}");
            assert_eq!(batched.interp_max_deviation, 0.0);
        }
    }
}

#[test]
fn batched_matches_scalar_bitwise_across_presets_jittered() {
    for preset in 0..PRESETS {
        // Guard against vacuity: every preset's channel must clear the
        // window-batchable gate, or the jittered run silently falls back
        // to the scalar dense path and this test compares it to itself.
        assert!(
            channel_for(preset).supports_window_lanes(Seconds::new(60.0)),
            "preset {preset} is not window-batchable"
        );
        for seed in [7u64, 1999] {
            let spec = spec_for(preset, seed, EnvJitter::relative(0.25), 8);
            let scalar = run_tier(&spec, DenseSolveTier::Scalar);
            let batched = run_tier(&spec, DenseSolveTier::Batched);
            assert_eq!(
                modulo_cache(batched),
                modulo_cache(scalar),
                "preset {preset}, seed {seed}"
            );
        }
    }
}

#[test]
fn battery_batched_matches_scalar_bitwise_across_presets_unjittered() {
    for preset in 0..PRESETS {
        for seed in [11u64, 4242] {
            let spec = battery_spec_for(preset, seed, EnvJitter::NONE, 9);
            let scalar = run_tier(&spec, DenseSolveTier::Scalar);
            let batched = run_tier(&spec, DenseSolveTier::Batched);
            assert_eq!(batched, scalar, "preset {preset}, seed {seed}");
            assert_eq!(batched.interp_max_deviation, 0.0);
        }
    }
}

#[test]
fn battery_batched_matches_scalar_bitwise_across_presets_jittered() {
    for preset in 0..PRESETS {
        assert!(
            channel_for(preset).supports_window_lanes(Seconds::new(60.0)),
            "preset {preset} is not window-batchable"
        );
        for seed in [7u64, 1999] {
            let spec = battery_spec_for(preset, seed, EnvJitter::relative(0.25), 8);
            let scalar = run_tier(&spec, DenseSolveTier::Scalar);
            let batched = run_tier(&spec, DenseSolveTier::Batched);
            assert_eq!(
                modulo_cache(batched),
                modulo_cache(scalar),
                "preset {preset}, seed {seed}"
            );
        }
    }
}

#[test]
fn battery_batched_tier_is_invariant_to_run_geometry() {
    let spec = battery_spec_for(1, 31, EnvJitter::relative(0.2), 13);
    let reference = run_fleet(
        &spec,
        FleetConfig::over(horizon())
            .with_threads(1)
            .with_shard_size(13),
    )
    .summary;
    for (threads, shard) in [(2usize, 1usize), (4, 3), (3, 1024), (1, 5)] {
        let got = run_fleet(
            &spec,
            FleetConfig::over(horizon())
                .with_threads(threads)
                .with_shard_size(shard),
        )
        .summary;
        assert_eq!(got, reference, "{threads} threads, shard {shard}");
    }
}

#[test]
fn interpolated_tier_is_exact_for_battery_stores() {
    // Battery lanes have no iterative inversion to tabulate, so the
    // interpolated tier steps the exact batched kernels: full equality
    // and a zero recorded deviation.
    let spec = battery_spec_for(3, 5, EnvJitter::relative(0.15), 6);
    let batched = run_tier(&spec, DenseSolveTier::Batched);
    let interp = run_tier(&spec, DenseSolveTier::Interpolated { samples: 4096 });
    assert_eq!(interp, batched);
    assert_eq!(interp.interp_max_deviation, 0.0);
}

#[test]
fn batched_tier_is_invariant_to_run_geometry() {
    // Shard size 1 forces single-lane runs, 3 splits the group mid-run,
    // 1024 gives one run for the whole group: the lane population's
    // composition must never leak into any lane's bits.
    let spec = spec_for(0, 31, EnvJitter::relative(0.2), 13);
    let reference = run_fleet(
        &spec,
        FleetConfig::over(horizon())
            .with_threads(1)
            .with_shard_size(13),
    )
    .summary;
    for (threads, shard) in [(2usize, 1usize), (4, 3), (3, 1024), (1, 5)] {
        let got = run_fleet(
            &spec,
            FleetConfig::over(horizon())
                .with_threads(threads)
                .with_shard_size(shard),
        )
        .summary;
        assert_eq!(got, reference, "{threads} threads, shard {shard}");
    }
}

#[test]
fn interpolated_tier_records_its_deviation_and_still_audits() {
    let spec = spec_for(3, 5, EnvJitter::relative(0.15), 6);
    let exact = run_tier(&spec, DenseSolveTier::Batched);
    let interp = run_tier(&spec, DenseSolveTier::Interpolated { samples: 4096 });

    assert!(
        interp.interp_max_deviation > 0.0,
        "interpolation tier must record its probed deviation"
    );
    assert!(
        interp.interp_max_deviation < 1e-3,
        "4096-knot table should deviate below a millivolt, got {}",
        interp.interp_max_deviation
    );
    // Conservation closes exactly — table residuals are charged to
    // losses, not dropped.
    assert!(interp.audit_relative < 1e-6);
    assert!(interp.worst_node_audit < 1e-6);
    // Physics stays close to the exact tier.
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(rel(interp.harvested.value(), exact.harvested.value()) < 1e-6);
    assert!(rel(interp.delivered.value(), exact.delivered.value()) < 1e-3);
    assert!((interp.uptime.mean - exact.uptime.mean).abs() < 1e-3);
}

#[test]
fn percentiles_and_stragglers_stay_ordered_on_every_tier() {
    for tier in [
        DenseSolveTier::Scalar,
        DenseSolveTier::Batched,
        DenseSolveTier::Interpolated { samples: 1024 },
    ] {
        let spec = spec_for(0, 23, EnvJitter::relative(0.3), 17);
        let s = run_fleet(
            &spec,
            FleetConfig {
                stragglers: 6,
                ..FleetConfig::over(horizon())
            }
            .with_dense_tier(tier),
        )
        .summary;
        let u = &s.uptime;
        let ladder = [u.min, u.p05, u.p25, u.p50, u.p75, u.p95, u.max];
        assert!(
            ladder.windows(2).all(|w| w[0] <= w[1]),
            "{tier:?}: percentile ladder not monotone: {ladder:?}"
        );
        assert!(u.min <= u.mean && u.mean <= u.max, "{tier:?}");
        assert_eq!(s.stragglers.len(), 6, "{tier:?}");
        assert!(
            s.stragglers
                .windows(2)
                .all(|w| (w[0].uptime, w[0].node) < (w[1].uptime, w[1].node)
                    || (w[0].uptime == w[1].uptime && w[0].node < w[1].node)),
            "{tier:?}: stragglers must be sorted by (uptime, node index)"
        );
        assert_eq!(s.stragglers[0].uptime, u.min, "{tier:?}");
    }
}
